"""Packed-bitset query kernel: uint64 columns, batched AND + popcount.

Every batch consumer of itemset frequencies in this repository -- the
:class:`~repro.db.queries.FrequencyOracle`, the miners, RELEASE-ANSWERS'
``C(d, k)`` precomputation -- reduces to the same primitive: intersect a few
packed column bitsets and count the surviving rows.  This module is that
primitive, implemented once and fully vectorized.

Representation
--------------
A database column (``n`` boolean row-entries) is stored as ``n_words =
ceil(n / 64)`` little-endian ``uint64`` words: bit ``b`` of word ``w``
(i.e. ``(word >> b) & 1``) is row ``w * 64 + b``.  The tail word's padding
bits (rows ``>= n``) are always zero, which makes intersections of
*non-empty* itemsets self-masking: no per-query tail fix-up is needed.  Only
the empty itemset needs an explicit all-rows mask, built arithmetically as
``(1 << valid_bits) - 1`` for the tail word (no unpack/repack round-trips,
no endianness traps).

Construction is one :func:`numpy.packbits` call over the whole matrix
(``bitorder="little"`` down the rows) followed by a byte-level view as
``'<u8'`` -- explicit little-endian words, so the layout is identical on any
host.  Popcounts go through :func:`numpy.bitwise_count` when available
(numpy >= 2.0) with a 16-bit lookup-table fallback for older numpy.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import chain, combinations
from math import comb
from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = [
    "PackedColumns",
    "popcount_words",
    "popcount_sum",
    "pack_columns",
    "combination_index_array",
]

#: Bits per packed word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

if hasattr(np, "bitwise_count"):

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Elementwise popcount of a uint64 array (int64 result)."""
        return np.bitwise_count(words).astype(np.int64)

    def popcount_sum(masks: np.ndarray) -> np.ndarray:
        """Row-wise popcount totals of a 2-D uint64 array (hot-path form)."""
        return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT16 = np.array(
        [bin(i).count("1") for i in range(1 << 16)], dtype=np.int64
    )

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Elementwise popcount of a uint64 array (int64 result)."""
        arr = np.ascontiguousarray(words)
        halves = arr.view(np.uint16).reshape(arr.shape + (4,))
        return _POPCOUNT16[halves].sum(axis=-1)

    def popcount_sum(masks: np.ndarray) -> np.ndarray:
        """Row-wise popcount totals of a 2-D uint64 array (hot-path form)."""
        return popcount_words(masks).sum(axis=1)


def pack_columns(rows: np.ndarray) -> np.ndarray:
    """Pack an ``(n, d)`` boolean matrix into ``(d, n_words)`` uint64 words.

    Bit ``b`` of word ``w`` of row ``j`` of the result is entry
    ``rows[w * 64 + b, j]``; padding bits beyond ``n`` are zero.  One
    vectorized :func:`numpy.packbits` call -- no per-column Python loop.
    """
    arr = np.asarray(rows, dtype=bool)
    if arr.ndim != 2:
        raise ParameterError(f"pack_columns expects a 2-D matrix, got shape {arr.shape}")
    n, d = arr.shape
    n_words = max(1, -(-n // WORD_BITS))
    packed = np.packbits(arr, axis=0, bitorder="little")  # (ceil(n/8), d)
    buf = np.zeros((n_words * 8, d), dtype=np.uint8)
    buf[: packed.shape[0]] = packed
    # '<u8' makes the word layout explicitly little-endian on every host.
    words = np.ascontiguousarray(buf.T).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


#: Cache combination index arrays only below this element count (larger
#: sweeps rebuild rather than pin memory).
_INDEX_CACHE_MAX = 1_000_000


def _build_combination_index(d: int, k: int) -> np.ndarray:
    if k == 0:
        return np.zeros((1, 0), dtype=np.intp)
    m = comb(d, k)
    flat = np.fromiter(
        chain.from_iterable(combinations(range(d), k)), dtype=np.intp, count=m * k
    )
    return flat.reshape(m, k)


@lru_cache(maxsize=16)
def _combination_index_cached(d: int, k: int) -> np.ndarray:
    idx = _build_combination_index(d, k)
    idx.setflags(write=False)
    return idx


def combination_index_array(d: int, k: int) -> np.ndarray:
    """All k-subsets of ``range(d)`` as a ``(C(d, k), k)`` index array.

    Lexicographic row order (the order of :func:`itertools.combinations`),
    materialized with one :func:`numpy.fromiter` pass.  Small enumerations
    are cached (read-only) -- repeated full-``C(d, k)`` workloads reuse the
    same index block.
    """
    if not 0 <= k <= d:
        raise ParameterError(f"need 0 <= k <= d, got k={k}, d={d}")
    if comb(d, k) * max(k, 1) > _INDEX_CACHE_MAX:
        return _build_combination_index(d, k)
    return _combination_index_cached(d, k)


def _tail_mask(n: int, n_words: int) -> np.ndarray:
    """All-rows mask: every bit below ``n`` set, padding bits clear."""
    mask = np.full(n_words, _ALL_ONES, dtype=np.uint64)
    if n == 0:
        mask[:] = 0
        return mask
    valid = n - (n_words - 1) * WORD_BITS
    if valid < WORD_BITS:
        mask[-1] = np.uint64((1 << valid) - 1)
    return mask


class PackedColumns:
    """Vertical packed-bitset view of a boolean matrix, plus batch kernels.

    Parameters
    ----------
    rows:
        ``(n, d)`` boolean matrix (rows are transactions, columns are items).

    Notes
    -----
    All query methods take plain item-index sequences, not
    :class:`~repro.db.itemset.Itemset` objects -- this is the layer below the
    oracle, shared by the miners and the sketchers.
    """

    __slots__ = ("_words", "_n", "_d", "_full", "_ext")

    def __init__(self, rows: np.ndarray) -> None:
        words = pack_columns(rows)
        self._words = words
        self._n = int(np.asarray(rows).shape[0])
        self._d = int(words.shape[0])
        self._full = _tail_mask(self._n, words.shape[1])
        self._ext: np.ndarray | None = None

    @classmethod
    def from_matrix(cls, rows: np.ndarray) -> "PackedColumns":
        """Build from any 2-D boolean-convertible matrix."""
        return cls(rows)

    # ------------------------------------------------------------------
    # Shape and raw access.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows."""
        return self._n

    @property
    def d(self) -> int:
        """Number of columns (items)."""
        return self._d

    @property
    def n_words(self) -> int:
        """uint64 words per column."""
        return int(self._words.shape[1])

    @property
    def words(self) -> np.ndarray:
        """The ``(d, n_words)`` packed words (do not mutate)."""
        return self._words

    @property
    def full_mask(self) -> np.ndarray:
        """All-rows mask (the empty itemset's intersection)."""
        return self._full.copy()

    def column_words(self, j: int) -> np.ndarray:
        """Packed words of column ``j``."""
        return self._words[self._check_item(j)]

    def _check_item(self, j: int) -> int:
        if not 0 <= j < self._d:
            raise ParameterError(f"item {j} out of range for d={self._d}")
        return j

    def _extended(self) -> np.ndarray:
        """Words with one extra virtual column ``d`` = all rows (batch padding)."""
        if self._ext is None:
            self._ext = np.vstack([self._words, self._full[None, :]])
        return self._ext

    # ------------------------------------------------------------------
    # Single-itemset kernels.
    # ------------------------------------------------------------------
    def intersect(self, items: Sequence[int]) -> np.ndarray:
        """Packed row-bitset of rows containing every item in ``items``.

        The empty selection returns the all-rows mask; non-empty selections
        need no tail masking because padding bits are zero by construction.
        """
        if len(items) == 0:
            return self._full.copy()
        mask = self._words[self._check_item(items[0])].copy()
        for j in items[1:]:
            mask &= self._words[self._check_item(j)]
        return mask

    def support(self, items: Sequence[int]) -> int:
        """Number of rows containing every item in ``items``."""
        if len(items) == 0:
            return self._n
        return int(popcount_words(self.intersect(items)).sum())

    # ------------------------------------------------------------------
    # Batched kernels.
    # ------------------------------------------------------------------
    def supports_for_index_array(self, idx: np.ndarray) -> np.ndarray:
        """Support counts for an ``(m, k)`` item-index array (one sweep).

        The core batched kernel: ``k - 1`` AND passes over an
        ``(m, n_words)`` block followed by one batched popcount.  Indices
        equal to ``d`` select the virtual all-rows column (ragged padding).
        """
        m, k = idx.shape
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        if k == 0:
            return np.full(m, self._n, dtype=np.int64)
        ext = self._extended()
        masks = ext[idx[:, 0]]  # fancy indexing copies; safe to AND in place
        for pos in range(1, k):
            masks &= ext[idx[:, pos]]
        return popcount_sum(masks)

    def supports_batch(self, itemsets: Iterable[Sequence[int]]) -> np.ndarray:
        """Support counts for many itemsets in one vectorized sweep.

        Ragged batches are handled by padding with a virtual all-rows
        column; uniform-length batches (a miner's candidate level) convert
        straight to the index array with no per-element Python loop.
        """
        batch = [tuple(t) for t in itemsets]
        m = len(batch)
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        max_k = max(len(t) for t in batch)
        if max_k == 0:
            return np.full(m, self._n, dtype=np.int64)
        if all(len(t) == max_k for t in batch):
            idx = np.asarray(batch, dtype=np.intp)
            if idx.size and (idx.min() < 0 or idx.max() >= self._d):
                bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
                raise ParameterError(f"item {bad} out of range for d={self._d}")
        else:
            idx = np.full((m, max_k), self._d, dtype=np.intp)
            for i, t in enumerate(batch):
                for pos, j in enumerate(t):
                    idx[i, pos] = self._check_item(j)
        return self.supports_for_index_array(idx)

    def _colex_ranks(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized colex ranks of an ``(m, k)`` sorted-combination array.

        ``rank(T) = sum_i C(c_i, i + 1)`` -- one Pascal-table gather, no
        per-itemset arithmetic.
        """
        k = idx.shape[1]
        if k == 0:
            return np.zeros(idx.shape[0], dtype=np.int64)
        pascal = np.array(
            [[comb(j, i + 1) for i in range(k)] for j in range(self._d)],
            dtype=np.int64,
        )
        return pascal[idx, np.arange(k)].sum(axis=1)

    def combination_supports(
        self, k: int, chunk_size: int = 1 << 16
    ) -> tuple[np.ndarray, np.ndarray]:
        """Supports of all ``C(d, k)`` k-itemsets in lexicographic order.

        Returns ``(indices, counts)``: the ``(C(d, k), k)`` lex-ordered
        index array and the matching support counts.  The evaluator shares
        ``(k - 1)``-prefix intersections: the ``C(d, k - 1)`` prefix masks
        are built once (indexed by colex rank), and each leaf is then a
        single gather + AND + popcount, evaluated in memory-bounded chunks.
        """
        idx = combination_index_array(self._d, k)
        if k <= 1:
            return idx, self.supports_for_index_array(idx)
        pidx = combination_index_array(self._d, k - 1)
        pmask = self._words[pidx[:, 0]]
        for pos in range(1, k - 1):
            pmask &= self._words[pidx[:, pos]]
        # Lex order groups k-combinations contiguously by (k-1)-prefix: the
        # prefix ending at j extends with j+1 .. d-1, so the leaf -> prefix
        # map is a plain repeat, no rank arithmetic or scatter needed.
        leaf_prefix = np.repeat(
            np.arange(pidx.shape[0], dtype=np.intp), self._d - 1 - pidx[:, -1]
        )
        counts = np.empty(idx.shape[0], dtype=np.int64)
        for lo in range(0, idx.shape[0], chunk_size):
            hi = min(lo + chunk_size, idx.shape[0])
            masks = pmask[leaf_prefix[lo:hi]]
            masks &= self._words[idx[lo:hi, k - 1]]
            counts[lo:hi] = popcount_sum(masks)
        return idx, counts

    def extension_supports(
        self, mask: np.ndarray, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """AND ``mask`` against columns ``lo..hi-1`` at once.

        Returns ``(child_masks, counts)``: the ``(hi - lo, n_words)`` packed
        intersections and their popcounts.  This is the shared inner step of
        the prefix-sharing evaluators (oracle DFS and Eclat).
        """
        child = self._words[lo:hi] & mask
        return child, popcount_sum(child)

    # ------------------------------------------------------------------
    # Prefix-sharing enumeration (Eclat-style DFS over packed words).
    # ------------------------------------------------------------------
    def iter_supports(
        self, k: int, min_count: int = 0
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        """Yield ``(items, support)`` for k-itemsets in lexicographic order.

        Shares each ``(k-1)``-prefix intersection across its extensions
        instead of intersecting every itemset from scratch, and evaluates the
        final level as one vectorized AND + popcount per prefix.  With
        ``min_count > 0`` the DFS prunes by monotonicity (a prefix below the
        threshold cannot have a qualifying extension) and yields only
        itemsets with ``support >= min_count``.
        """
        if not 0 <= k <= self._d:
            raise ParameterError(f"need 0 <= k <= d, got k={k}, d={self._d}")
        if k == 0:
            if self._n >= min_count:
                yield (), self._n
            return
        yield from self._dfs((), self._full, 0, k, min_count)

    def _dfs(
        self,
        prefix: tuple[int, ...],
        mask: np.ndarray,
        start: int,
        k: int,
        min_count: int,
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        depth = len(prefix)
        remaining = k - depth
        hi = self._d - remaining + 1
        if remaining == 1:
            child, counts = self.extension_supports(mask, start, self._d)
            for off in range(self._d - start):
                count = int(counts[off])
                if count >= min_count:
                    yield prefix + (start + off,), count
            return
        child = self._words[start:] & mask
        if min_count > 0:
            counts = popcount_sum(child)
        for j in range(start, hi):
            if min_count > 0 and counts[j - start] < min_count:
                continue
            yield from self._dfs(
                prefix + (j,), child[j - start], j + 1, k, min_count
            )

    def support_counts_all(self, k: int) -> np.ndarray:
        """Supports of all ``C(d, k)`` k-itemsets, indexed by colex rank.

        The rank convention matches :func:`~repro.db.itemset.rank_itemset`
        (``rank(T) = sum_i C(c_i, i+1)``), so ``result[rank_itemset(T)]`` is
        the support of ``T``.  One flat batched kernel sweep plus a
        vectorized Pascal-table rank scatter.
        """
        if not 0 <= k <= self._d:
            raise ParameterError(f"need 0 <= k <= d, got k={k}, d={self._d}")
        idx, counts = self.combination_supports(k)
        if k == 0:
            return counts
        out = np.empty_like(counts)
        out[self._colex_ranks(idx)] = counts
        return out

    def __repr__(self) -> str:
        return f"PackedColumns(n={self._n}, d={self._d}, n_words={self.n_words})"
