"""Packed-bitset query kernels: uint64 columns *and* rows, batched popcounts.

Every batch consumer of itemset frequencies in this repository -- the
:class:`~repro.db.queries.FrequencyOracle`, the miners, RELEASE-ANSWERS'
``C(d, k)`` precomputation -- reduces to one of two primitives, each
implemented here once and fully vectorized:

* :class:`PackedColumns` (column-major): intersect a few packed *column*
  bitsets and count the surviving rows.  Optimal for support **counts**:
  a k-itemset query touches ``k * ceil(n / 64)`` words.
* :class:`PackedRows` (row-major): AND a packed itemset mask against every
  packed *row* and compare popcounts.  Optimal for row-**membership**
  answers (which rows contain ``T``): one query yields the full boolean
  containment mask in ``n * ceil(d / 64)`` word operations, and batches
  yield ``(m, n)`` mask matrices.

Representation
--------------
A database column (``n`` boolean row-entries) is stored as ``n_words =
ceil(n / 64)`` little-endian ``uint64`` words: bit ``b`` of word ``w``
(i.e. ``(word >> b) & 1``) is row ``w * 64 + b``.  The tail word's padding
bits (rows ``>= n``) are always zero, which makes intersections of
*non-empty* itemsets self-masking: no per-query tail fix-up is needed.  Only
the empty itemset needs an explicit all-rows mask, built arithmetically as
``(1 << valid_bits) - 1`` for the tail word (no unpack/repack round-trips,
no endianness traps).  :class:`PackedRows` uses the same word layout along
the *item* axis: bit ``b`` of word ``w`` of row ``i`` is item
``w * 64 + b`` of row ``i``.

Construction is one :func:`numpy.packbits` call over the whole matrix
(``bitorder="little"``) followed by a byte-level view as ``'<u8'`` --
explicit little-endian words, so the layout is identical on any host.
Popcounts go through :func:`numpy.bitwise_count` when available
(numpy >= 2.0) with a 16-bit lookup-table fallback for older numpy.

Sharded evaluation
------------------
The batched evaluators accept a ``workers=`` parameter: the combination /
query index is split into contiguous shards, each running one of the
module-level kernel functions below over a disjoint slice of a
preallocated output, so results are bit-identical for every worker count
and every executor.  *Where* the shards execute is pluggable through the
``backend=`` parameter (see :mod:`repro.db.backends`): ``"serial"`` runs
inline, ``"thread"`` uses a shared-memory thread pool (numpy releases the
GIL in the hot AND / popcount ops), and ``"process"`` publishes the
packed word arrays into named :mod:`multiprocessing.shared_memory` blocks
and fans shards out to a worker-process pool -- no row data or results
are ever pickled.  ``backend=None`` applies an auto heuristic that
escalates serial -> thread -> process by estimated word-op volume; the
``REPRO_EVAL_BACKEND`` environment variable overrides it.

``workers=None`` applies the worker-count auto heuristic -- serial below
:data:`PARALLEL_MIN_WORDS` estimated word-operations or on a single-core
host, else one worker per core (capped) -- so small problems never pay
dispatch.  The ``REPRO_WORKERS`` environment variable overrides the
heuristic (used by CI to force the sharded path); explicit and
environment worker counts are both clamped to ``os.cpu_count()`` so an
oversized request cannot oversubscribe the shard pool.

Kernel implementations
----------------------
*What code* evaluates each shard is a second, orthogonal axis: the
``kernel=`` parameter selects the kernel implementation from a two-entry
registry -- ``"numpy"`` (the vectorized kernels in this module) or
``"native"`` (cffi-compiled C in :mod:`repro.db._native`: fused
AND + popcount with no intermediate mask matrices, prefix-sharing leaf
sweeps, word-at-a-time early-exit containment).  Resolution precedence is
explicit ``kernel=`` parameter > the ``REPRO_EVAL_KERNEL`` environment
variable > ``"auto"``, which uses the native tier whenever the compiled
module imports cleanly and the numpy tier otherwise.  An explicit
``"native"`` request without a usable compiler degrades to numpy with a
one-time :class:`RuntimeWarning`, never an error.  Both implementations
are bit-identical for every kernel, worker count, and backend (the
differential suite in ``tests/test_native_kernels.py`` is the gate), and
the native kernels release the GIL, so ``backend="thread"`` scales on
them where the numpy tier is GIL-bound outside its vectorized ops.
"""

from __future__ import annotations

import os
from functools import lru_cache
from itertools import chain, combinations
from math import comb
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ParameterError
from .backends import ShardBackend, ShardJob, ShardKernel, resolve_backend

__all__ = [
    "PackedColumns",
    "PackedRows",
    "popcount_words",
    "popcount_sum",
    "pack_columns",
    "pack_rows",
    "unpack_rows",
    "combination_index_array",
    "resolve_workers",
    "resolve_kernel",
    "available_kernels",
    "PARALLEL_MIN_WORDS",
    "KERNEL_ENV",
]

#: Bits per packed word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

def _popcount_words_bitwise(words: np.ndarray) -> np.ndarray:
    """Elementwise popcount via :func:`numpy.bitwise_count` (numpy >= 2.0)."""
    return np.bitwise_count(words).astype(np.int64)


def _popcount_sum_bitwise(masks: np.ndarray) -> np.ndarray:
    """Row-wise popcount totals via :func:`numpy.bitwise_count`."""
    return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)


#: 16-bit popcount lookup table for the numpy < 2.0 fallback; built on
#: first use so numpy >= 2.0 hosts never allocate it.
_POPCOUNT16: np.ndarray | None = None


def _popcount16_table() -> np.ndarray:
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        _POPCOUNT16 = np.array(
            [bin(i).count("1") for i in range(1 << 16)], dtype=np.int64
        )
    return _POPCOUNT16


def _popcount_words_lut(words: np.ndarray) -> np.ndarray:
    """Elementwise popcount via the 16-bit lookup table (numpy < 2.0)."""
    arr = np.ascontiguousarray(words)
    halves = arr.view(np.uint16).reshape(arr.shape + (4,))
    return _popcount16_table()[halves].sum(axis=-1)


def _popcount_sum_lut(masks: np.ndarray) -> np.ndarray:
    """Row-wise popcount totals via the 16-bit lookup table."""
    return _popcount_words_lut(masks).sum(axis=1)


# The numpy-version branch is resolved once at import into module-level
# function pointers -- never re-checked per call.  Both implementations
# stay importable (and unit-tested) on every numpy version.
if hasattr(np, "bitwise_count"):
    popcount_words = _popcount_words_bitwise
    popcount_sum = _popcount_sum_bitwise
else:  # pragma: no cover - exercised only on numpy < 2.0
    popcount_words = _popcount_words_lut
    popcount_sum = _popcount_sum_lut


def pack_columns(rows: np.ndarray) -> np.ndarray:
    """Pack an ``(n, d)`` boolean matrix into ``(d, n_words)`` uint64 words.

    Bit ``b`` of word ``w`` of row ``j`` of the result is entry
    ``rows[w * 64 + b, j]``; padding bits beyond ``n`` are zero.  One
    vectorized :func:`numpy.packbits` call -- no per-column Python loop.
    """
    arr = np.asarray(rows, dtype=bool)
    if arr.ndim != 2:
        raise ParameterError(f"pack_columns expects a 2-D matrix, got shape {arr.shape}")
    n, d = arr.shape
    n_words = max(1, -(-n // WORD_BITS))
    packed = np.packbits(arr, axis=0, bitorder="little")  # (ceil(n/8), d)
    buf = np.zeros((n_words * 8, d), dtype=np.uint8)
    buf[: packed.shape[0]] = packed
    # '<u8' makes the word layout explicitly little-endian on every host.
    words = np.ascontiguousarray(buf.T).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def pack_rows(rows: np.ndarray) -> np.ndarray:
    """Pack an ``(n, d)`` boolean matrix into ``(n, d_words)`` uint64 words.

    The row-major twin of :func:`pack_columns`: bit ``b`` of word ``w`` of
    row ``i`` is entry ``rows[i, w * 64 + b]``; padding bits beyond ``d``
    are zero.  One vectorized :func:`numpy.packbits` call.
    """
    arr = np.asarray(rows, dtype=bool)
    if arr.ndim != 2:
        raise ParameterError(f"pack_rows expects a 2-D matrix, got shape {arr.shape}")
    n, d = arr.shape
    d_words = max(1, -(-d // WORD_BITS))
    packed = np.packbits(arr, axis=1, bitorder="little")  # (n, ceil(d/8))
    buf = np.zeros((n, d_words * 8), dtype=np.uint8)
    buf[:, : packed.shape[1]] = packed
    # '<u8' makes the word layout explicitly little-endian on every host.
    words = np.ascontiguousarray(buf).view(np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def unpack_rows(words: np.ndarray, d: int) -> np.ndarray:
    """Unpack ``(n, d_words)`` row words back into an ``(n, d)`` boolean matrix.

    Inverse of :func:`pack_rows` given the original column count ``d``.
    """
    arr = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    if arr.ndim != 2:
        raise ParameterError(f"unpack_rows expects a 2-D array, got shape {arr.shape}")
    d_words = max(1, -(-d // WORD_BITS))
    if arr.shape[1] != d_words:
        raise ParameterError(
            f"d={d} needs {d_words} words per row, got {arr.shape[1]}"
        )
    as_bytes = arr.astype(np.dtype("<u8"), copy=False).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(arr.shape[0], -1), axis=1, bitorder="little")
    return bits[:, :d].astype(bool)


# ----------------------------------------------------------------------
# Sharded (multi-worker) evaluation plumbing.
# ----------------------------------------------------------------------

#: Auto heuristic: stay serial below this many estimated uint64 word
#: operations -- thread dispatch costs more than it saves on tiny sweeps.
PARALLEL_MIN_WORDS = 1 << 17

#: Auto heuristic never spawns more threads than this, however many cores.
_MAX_AUTO_WORKERS = 8

#: Environment override (CI forces the sharded path with REPRO_WORKERS=2).
_WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the kernel implementation (``auto`` /
#: ``numpy`` / ``native``); CI forces the native tier with it.
KERNEL_ENV = "REPRO_EVAL_KERNEL"


def available_kernels() -> tuple[str, ...]:
    """Names accepted by ``kernel=`` and ``REPRO_EVAL_KERNEL``."""
    return ("auto", "numpy", "native")


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve a kernel request to the implementation that will run.

    Returns ``"numpy"`` or ``"native"``.  Precedence: explicit ``kernel``
    argument > the ``REPRO_EVAL_KERNEL`` environment variable > ``auto``.
    ``auto`` picks the native tier when the cffi-compiled module loads
    (building it on first use) and numpy otherwise; an explicit
    ``"native"`` request that cannot be satisfied -- no cffi, no C
    compiler -- degrades to numpy with a one-time warning, never an
    error, so forcing the native tier is always safe.

    Raises
    ------
    ParameterError
        If the name is not one of :func:`available_kernels`.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "auto"
    if kernel not in available_kernels():
        raise ParameterError(
            f"unknown kernel impl {kernel!r}; expected one of {available_kernels()}"
        )
    if kernel == "numpy":
        return "numpy"
    from . import _native

    if _native.available():
        return "native"
    if kernel == "native":
        _native.warn_unavailable()
    return "numpy"


def resolve_workers(workers: int | None, word_ops: int) -> int:
    """Worker count for a sweep of ~``word_ops`` uint64 operations.

    Explicit ``workers`` (or the ``REPRO_WORKERS`` environment variable)
    wins; ``None`` applies the auto heuristic: serial below
    :data:`PARALLEL_MIN_WORDS` or on a single-core host, else one worker
    per core capped at 8.  Every resolved count -- explicit, environment,
    or auto -- is clamped to ``os.cpu_count()``: extra shards beyond the
    core count only add dispatch overhead, never throughput.
    """
    cpu_limit = os.cpu_count() or 1
    if workers is None:
        env = os.environ.get(_WORKERS_ENV)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ParameterError(
                    f"{_WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            if word_ops < PARALLEL_MIN_WORDS:
                return 1
            return max(1, min(_MAX_AUTO_WORKERS, cpu_limit))
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, cpu_limit))


def _run_job(
    op: str,
    arrays: dict[str, np.ndarray],
    outs: dict[str, np.ndarray],
    total: int,
    word_ops: int,
    workers: int | None,
    backend: str | ShardBackend | None,
    kernel: str | None = None,
    params: dict | None = None,
) -> None:
    """Resolve workers, executor, and kernel impl, then run one sharded sweep.

    ``op`` names the kernel in :data:`_KERNEL_IMPLS`; ``kernel`` selects
    the implementation tier (see :func:`resolve_kernel`).  Every backend
    degenerates to the identical inline kernel call when the resolved
    worker count is 1, and every kernel impl is bit-identical, so results
    cannot depend on the worker count, the executor, or the tier.
    Exceptions propagate.
    """
    resolved = resolve_workers(workers, word_ops)
    fn = _KERNEL_IMPLS[op, resolve_kernel(kernel)]
    job = ShardJob(kernel=fn, arrays=arrays, outs=outs, total=total, params=params or {})
    resolve_backend(backend, word_ops, resolved).run(job, resolved)


def _batch_index_array(batch: Sequence[tuple[int, ...]], d: int) -> np.ndarray:
    """Ragged itemset batch -> ``(m, max_k)`` index array padded with ``d``.

    Shared by both kernels: ``d`` is the padding sentinel (the virtual
    all-rows column for :class:`PackedColumns`, a no-op bit for
    :class:`PackedRows`).  Uniform-length batches convert straight to the
    array with no per-element Python loop; items are range-checked either
    way.
    """
    m = len(batch)
    max_k = max(len(t) for t in batch)
    if all(len(t) == max_k for t in batch):
        idx = np.asarray(batch, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= d):
            bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
            raise ParameterError(f"item {bad} out of range for d={d}")
        return idx
    idx = np.full((m, max_k), d, dtype=np.intp)
    for i, t in enumerate(batch):
        for pos, j in enumerate(t):
            if not 0 <= j < d:
                raise ParameterError(f"item {j} out of range for d={d}")
            idx[i, pos] = j
    return idx


#: Cache combination index arrays only below this element count (larger
#: sweeps rebuild rather than pin memory).
_INDEX_CACHE_MAX = 1_000_000


def _build_combination_index(d: int, k: int) -> np.ndarray:
    if k == 0:
        return np.zeros((1, 0), dtype=np.intp)
    m = comb(d, k)
    flat = np.fromiter(
        chain.from_iterable(combinations(range(d), k)), dtype=np.intp, count=m * k
    )
    return flat.reshape(m, k)


@lru_cache(maxsize=16)
def _combination_index_cached(d: int, k: int) -> np.ndarray:
    idx = _build_combination_index(d, k)
    idx.setflags(write=False)
    return idx


def combination_index_array(d: int, k: int) -> np.ndarray:
    """All k-subsets of ``range(d)`` as a ``(C(d, k), k)`` index array.

    Lexicographic row order (the order of :func:`itertools.combinations`),
    materialized with one :func:`numpy.fromiter` pass.  Small enumerations
    are cached (read-only) -- repeated full-``C(d, k)`` workloads reuse the
    same index block.
    """
    if not 0 <= k <= d:
        raise ParameterError(f"need 0 <= k <= d, got k={k}, d={d}")
    if comb(d, k) * max(k, 1) > _INDEX_CACHE_MAX:
        return _build_combination_index(d, k)
    return _combination_index_cached(d, k)


# ----------------------------------------------------------------------
# Shard kernels.  Module-level (not closures) so the process backend can
# ship them to workers by qualified name; each reads shared input arrays
# and writes the disjoint ``[lo:hi)`` slice of a preallocated output.
# ----------------------------------------------------------------------
def _index_supports_kernel(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Shard of :meth:`PackedColumns.supports_for_index_array`."""
    if lo >= hi:
        return
    ext = arrays["ext"]
    idx = arrays["idx"]
    k = idx.shape[1]
    masks = ext[idx[lo:hi, 0]]  # fancy indexing copies; AND in place
    for pos in range(1, k):
        masks &= ext[idx[lo:hi, pos]]
    outs["counts"][lo:hi] = popcount_sum(masks)


def _combination_supports_kernel(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Shard of :meth:`PackedColumns.combination_supports` (k >= 2 leaves)."""
    words = arrays["words"]
    pmask = arrays["pmask"]
    leaf_prefix = arrays["leaf_prefix"]
    last = arrays["last"]
    counts = outs["counts"]
    chunk_size = int(params["chunk_size"])
    for clo in range(lo, hi, chunk_size):
        chi = min(clo + chunk_size, hi)
        masks = pmask[leaf_prefix[clo:chi]]
        masks &= words[last[clo:chi]]
        counts[clo:chi] = popcount_sum(masks)


def _contains_kernel(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Shard of :meth:`PackedRows.contains_batch`.

    Word-at-a-time evaluation of ``row & mask == mask`` into preallocated
    buffers: a 2-D uint64 scratch block (reused across chunks) holds the
    AND, the equality writes straight into the output slice, and further
    words fold in with an in-place boolean AND.  No 3-D temporaries, no
    ``.all(axis=2)`` reduction pass -- this is what lifted the
    ``row_containment`` bench out of the noise.
    """
    if lo >= hi:
        return
    words = arrays["words"]  # (n, d_words)
    masks = arrays["masks"]  # (m, d_words) query masks, built once per call
    out = outs["mask"]  # (m, n) boolean containment matrix
    chunk = int(params["chunk"])
    n, d_words = words.shape
    width = min(chunk, hi - lo)
    scratch = np.empty((width, n), dtype=np.uint64)
    fold = np.empty((width, n), dtype=bool) if d_words > 1 else None
    for clo in range(lo, hi, chunk):
        chi = min(clo + chunk, hi)
        m_c = chi - clo
        block = out[clo:chi]
        for w in range(d_words):
            q = masks[clo:chi, w, None]  # (m_c, 1) broadcasts over rows
            np.bitwise_and(words[:, w][None, :], q, out=scratch[:m_c])
            if w == 0:
                np.equal(scratch[:m_c], q, out=block)
            else:
                np.equal(scratch[:m_c], q, out=fold[:m_c])
                block &= fold[:m_c]


# ----------------------------------------------------------------------
# Native-tier shard kernels: same signature, same [lo:hi) contract, but
# the loop body is cffi-compiled C (fused AND + popcount, early-exit
# containment) that releases the GIL.  Module-level like the numpy
# kernels so the process backend ships them by qualified name; each
# re-resolves the compiled library locally, so a worker that cannot
# build it (no compiler in a spawn context) still computes the identical
# answer through the numpy kernel.
# ----------------------------------------------------------------------
def _index_supports_kernel_native(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Native shard of :meth:`PackedColumns.supports_for_index_array`."""
    from . import _native

    lib = _native.load()
    if lib is None:  # pragma: no cover - worker without the compiled tier
        _index_supports_kernel(arrays, outs, lo, hi, params)
        return
    lib.index_supports(arrays["ext"], arrays["idx"], outs["counts"], lo, hi)


def _combination_supports_kernel_native(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Native shard of :meth:`PackedColumns.combination_supports`."""
    from . import _native

    lib = _native.load()
    if lib is None:  # pragma: no cover - worker without the compiled tier
        _combination_supports_kernel(arrays, outs, lo, hi, params)
        return
    lib.combination_supports(
        arrays["words"],
        arrays["pmask"],
        arrays["leaf_prefix"],
        arrays["last"],
        outs["counts"],
        lo,
        hi,
    )


def _contains_kernel_native(
    arrays: Mapping[str, np.ndarray],
    outs: Mapping[str, np.ndarray],
    lo: int,
    hi: int,
    params: Mapping,
) -> None:
    """Native shard of :meth:`PackedRows.contains_batch` (early-exit C loop)."""
    from . import _native

    lib = _native.load()
    if lib is None:  # pragma: no cover - worker without the compiled tier
        _contains_kernel(arrays, outs, lo, hi, params)
        return
    lib.contains(arrays["words"], arrays["masks"], outs["mask"], lo, hi)


#: Kernel registry: (operation, implementation tier) -> shard function.
_KERNEL_IMPLS: dict[tuple[str, str], ShardKernel] = {
    ("index_supports", "numpy"): _index_supports_kernel,
    ("index_supports", "native"): _index_supports_kernel_native,
    ("combination_supports", "numpy"): _combination_supports_kernel,
    ("combination_supports", "native"): _combination_supports_kernel_native,
    ("contains", "numpy"): _contains_kernel,
    ("contains", "native"): _contains_kernel_native,
}


def _tail_mask(n: int, n_words: int) -> np.ndarray:
    """All-rows mask: every bit below ``n`` set, padding bits clear."""
    mask = np.full(n_words, _ALL_ONES, dtype=np.uint64)
    if n == 0:
        mask[:] = 0
        return mask
    valid = n - (n_words - 1) * WORD_BITS
    if valid < WORD_BITS:
        mask[-1] = np.uint64((1 << valid) - 1)
    return mask


class PackedColumns:
    """Vertical packed-bitset view of a boolean matrix, plus batch kernels.

    Parameters
    ----------
    rows:
        ``(n, d)`` boolean matrix (rows are transactions, columns are items).

    Notes
    -----
    All query methods take plain item-index sequences, not
    :class:`~repro.db.itemset.Itemset` objects -- this is the layer below the
    oracle, shared by the miners and the sketchers.
    """

    __slots__ = ("_words", "_n", "_d", "_full", "_ext")

    def __init__(self, rows: np.ndarray) -> None:
        words = pack_columns(rows)
        self._words = words
        self._n = int(np.asarray(rows).shape[0])
        self._d = int(words.shape[0])
        self._full = _tail_mask(self._n, words.shape[1])
        self._ext: np.ndarray | None = None

    @classmethod
    def from_matrix(cls, rows: np.ndarray) -> "PackedColumns":
        """Build from any 2-D boolean-convertible matrix."""
        return cls(rows)

    # ------------------------------------------------------------------
    # Shape and raw access.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows."""
        return self._n

    @property
    def d(self) -> int:
        """Number of columns (items)."""
        return self._d

    @property
    def n_words(self) -> int:
        """uint64 words per column."""
        return int(self._words.shape[1])

    @property
    def words(self) -> np.ndarray:
        """The ``(d, n_words)`` packed words (do not mutate)."""
        return self._words

    @property
    def full_mask(self) -> np.ndarray:
        """All-rows mask (the empty itemset's intersection)."""
        return self._full.copy()

    def column_words(self, j: int) -> np.ndarray:
        """Packed words of column ``j``."""
        return self._words[self._check_item(j)]

    def _check_item(self, j: int) -> int:
        if not 0 <= j < self._d:
            raise ParameterError(f"item {j} out of range for d={self._d}")
        return j

    def _extended(self) -> np.ndarray:
        """Words with one extra virtual column ``d`` = all rows (batch padding)."""
        if self._ext is None:
            self._ext = np.vstack([self._words, self._full[None, :]])
        return self._ext

    # ------------------------------------------------------------------
    # Single-itemset kernels.
    # ------------------------------------------------------------------
    def intersect(self, items: Sequence[int]) -> np.ndarray:
        """Packed row-bitset of rows containing every item in ``items``.

        The empty selection returns the all-rows mask; non-empty selections
        need no tail masking because padding bits are zero by construction.
        """
        if len(items) == 0:
            return self._full.copy()
        mask = self._words[self._check_item(items[0])].copy()
        for j in items[1:]:
            mask &= self._words[self._check_item(j)]
        return mask

    def support(self, items: Sequence[int]) -> int:
        """Number of rows containing every item in ``items``."""
        if len(items) == 0:
            return self._n
        return int(popcount_words(self.intersect(items)).sum())

    # ------------------------------------------------------------------
    # Batched kernels.
    # ------------------------------------------------------------------
    def supports_for_index_array(
        self,
        idx: np.ndarray,
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Support counts for an ``(m, k)`` item-index array (one sweep).

        The core batched kernel: ``k - 1`` AND passes over an
        ``(m, n_words)`` block followed by one batched popcount.  Indices
        equal to ``d`` select the virtual all-rows column (ragged padding).
        With ``workers > 1`` the index rows are sharded, each shard writing
        a disjoint slice of the output; ``None`` applies the auto heuristic
        of :func:`resolve_workers`.  ``backend`` selects the shard executor
        (serial / thread / process; ``None`` = auto escalation by volume)
        and ``kernel`` the implementation tier (numpy / native; ``None`` =
        ``REPRO_EVAL_KERNEL`` or auto, see :func:`resolve_kernel`).
        """
        m, k = idx.shape
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        if k == 0:
            return np.full(m, self._n, dtype=np.int64)
        out = np.empty(m, dtype=np.int64)
        _run_job(
            "index_supports",
            arrays={"ext": self._extended(), "idx": np.ascontiguousarray(idx)},
            outs={"counts": out},
            total=m,
            word_ops=m * k * self.n_words,
            workers=workers,
            backend=backend,
            kernel=kernel,
        )
        return out

    def supports_batch(
        self,
        itemsets: Iterable[Sequence[int]],
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Support counts for many itemsets in one vectorized sweep.

        Ragged batches are handled by padding with a virtual all-rows
        column; uniform-length batches (a miner's candidate level) convert
        straight to the index array with no per-element Python loop.
        ``workers`` shards the sweep, ``backend`` picks its executor, and
        ``kernel`` its implementation tier (see
        :meth:`supports_for_index_array`).
        """
        batch = [tuple(t) for t in itemsets]
        m = len(batch)
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        if max(len(t) for t in batch) == 0:
            return np.full(m, self._n, dtype=np.int64)
        idx = _batch_index_array(batch, self._d)
        return self.supports_for_index_array(
            idx, workers=workers, backend=backend, kernel=kernel
        )

    def _colex_ranks(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized colex ranks of an ``(m, k)`` sorted-combination array.

        ``rank(T) = sum_i C(c_i, i + 1)`` -- one Pascal-table gather, no
        per-itemset arithmetic.
        """
        k = idx.shape[1]
        if k == 0:
            return np.zeros(idx.shape[0], dtype=np.int64)
        pascal = np.array(
            [[comb(j, i + 1) for i in range(k)] for j in range(self._d)],
            dtype=np.int64,
        )
        return pascal[idx, np.arange(k)].sum(axis=1)

    def combination_supports(
        self,
        k: int,
        chunk_size: int = 1 << 16,
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Supports of all ``C(d, k)`` k-itemsets in lexicographic order.

        Returns ``(indices, counts)``: the ``(C(d, k), k)`` lex-ordered
        index array and the matching support counts.  The evaluator shares
        ``(k - 1)``-prefix intersections: the ``C(d, k - 1)`` prefix masks
        are built once (indexed by colex rank), and each leaf is then a
        single gather + AND + popcount, evaluated in memory-bounded chunks
        (the native tier fuses gather, AND, and popcount into one C loop
        and needs no chunking).  With ``workers > 1`` the leaf range is
        sharded (the prefix masks are shared -- in place by threads, via
        one shared-memory publication by the process backend); every
        worker count, executor, and kernel tier produces bit-identical
        counts.
        """
        idx = combination_index_array(self._d, k)
        if k <= 1:
            return idx, self.supports_for_index_array(
                idx, workers=workers, backend=backend, kernel=kernel
            )
        pidx = combination_index_array(self._d, k - 1)
        pmask = self._words[pidx[:, 0]]
        for pos in range(1, k - 1):
            pmask &= self._words[pidx[:, pos]]
        # Lex order groups k-combinations contiguously by (k-1)-prefix: the
        # prefix ending at j extends with j+1 .. d-1, so the leaf -> prefix
        # map is a plain repeat, no rank arithmetic or scatter needed.
        leaf_prefix = np.repeat(
            np.arange(pidx.shape[0], dtype=np.intp), self._d - 1 - pidx[:, -1]
        )
        counts = np.empty(idx.shape[0], dtype=np.int64)
        _run_job(
            "combination_supports",
            arrays={
                "words": self._words,
                "pmask": pmask,
                "leaf_prefix": leaf_prefix,
                "last": np.ascontiguousarray(idx[:, k - 1]),
            },
            outs={"counts": counts},
            total=idx.shape[0],
            word_ops=2 * idx.shape[0] * self.n_words,
            workers=workers,
            backend=backend,
            kernel=kernel,
            params={"chunk_size": int(chunk_size)},
        )
        return idx, counts

    def extension_supports(
        self, mask: np.ndarray, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """AND ``mask`` against columns ``lo..hi-1`` at once.

        Returns ``(child_masks, counts)``: the ``(hi - lo, n_words)`` packed
        intersections and their popcounts.  This is the shared inner step of
        the prefix-sharing evaluators (oracle DFS and Eclat).
        """
        child = self._words[lo:hi] & mask
        return child, popcount_sum(child)

    # ------------------------------------------------------------------
    # Prefix-sharing enumeration (Eclat-style DFS over packed words).
    # ------------------------------------------------------------------
    def iter_supports(
        self, k: int, min_count: int = 0
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        """Yield ``(items, support)`` for k-itemsets in lexicographic order.

        Shares each ``(k-1)``-prefix intersection across its extensions
        instead of intersecting every itemset from scratch, and evaluates the
        final level as one vectorized AND + popcount per prefix.  With
        ``min_count > 0`` the DFS prunes by monotonicity (a prefix below the
        threshold cannot have a qualifying extension) and yields only
        itemsets with ``support >= min_count``.
        """
        if not 0 <= k <= self._d:
            raise ParameterError(f"need 0 <= k <= d, got k={k}, d={self._d}")
        if k == 0:
            if self._n >= min_count:
                yield (), self._n
            return
        yield from self._dfs((), self._full, 0, k, min_count)

    def _dfs(
        self,
        prefix: tuple[int, ...],
        mask: np.ndarray,
        start: int,
        k: int,
        min_count: int,
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        depth = len(prefix)
        remaining = k - depth
        hi = self._d - remaining + 1
        if remaining == 1:
            child, counts = self.extension_supports(mask, start, self._d)
            for off in range(self._d - start):
                count = int(counts[off])
                if count >= min_count:
                    yield prefix + (start + off,), count
            return
        child = self._words[start:] & mask
        if min_count > 0:
            counts = popcount_sum(child)
        for j in range(start, hi):
            if min_count > 0 and counts[j - start] < min_count:
                continue
            yield from self._dfs(
                prefix + (j,), child[j - start], j + 1, k, min_count
            )

    def support_counts_all(
        self,
        k: int,
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Supports of all ``C(d, k)`` k-itemsets, indexed by colex rank.

        The rank convention matches :func:`~repro.db.itemset.rank_itemset`
        (``rank(T) = sum_i C(c_i, i+1)``), so ``result[rank_itemset(T)]`` is
        the support of ``T``.  One flat batched kernel sweep (optionally
        sharded via ``workers``/``backend``/``kernel``) plus a vectorized
        Pascal-table rank scatter.
        """
        if not 0 <= k <= self._d:
            raise ParameterError(f"need 0 <= k <= d, got k={k}, d={self._d}")
        idx, counts = self.combination_supports(
            k, workers=workers, backend=backend, kernel=kernel
        )
        if k == 0:
            return counts
        out = np.empty_like(counts)
        out[self._colex_ranks(idx)] = counts
        return out

    def __repr__(self) -> str:
        return f"PackedColumns(n={self._n}, d={self._d}, n_words={self.n_words})"


#: Element budget per intermediate block in PackedRows batch kernels
#: (uint64 elements; ~16 MB per temporary at 8 bytes each).
_ROW_BATCH_ELEMS = 1 << 21


class PackedRows:
    """Horizontal packed-bitset view of a boolean matrix: row containment.

    Rows are packed along the *item* axis (``d_words = ceil(d / 64)``
    little-endian uint64 words per row).  A k-itemset becomes a single
    packed query mask, and containment is batched AND + popcount-equality:
    row ``i`` contains ``T`` iff ``popcount(row_i & mask_T) ==
    popcount(mask_T)`` -- realized wordwise as ``row_i & mask_T == mask_T``,
    which is the same predicate without materializing popcounts.  Because
    the right-hand side is the OR-ed mask -- not the length of the item
    sequence -- duplicate items in a query collapse naturally and count
    once.

    This is the membership-side twin of :class:`PackedColumns`: use it when
    the answer is *which rows* contain an itemset (boolean masks, mask
    matrices, streaming row ingestion), not just how many.
    """

    __slots__ = ("_words", "_n", "_d")

    def __init__(self, rows: np.ndarray) -> None:
        words = pack_rows(rows)
        self._words = words
        self._n = int(words.shape[0])
        self._d = int(np.asarray(rows).shape[1])

    @classmethod
    def from_matrix(cls, rows: np.ndarray) -> "PackedRows":
        """Build from any 2-D boolean-convertible matrix."""
        return cls(rows)

    @classmethod
    def from_words(cls, words: np.ndarray, d: int) -> "PackedRows":
        """Adopt an already-packed ``(n, d_words)`` word block (no repack).

        ``words`` must follow the :func:`pack_rows` layout for ``d`` items,
        padding bits clear.  Used by derived views (row subsampling) to
        gather packed rows without a pack/unpack round trip.
        """
        arr = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
        d_words = max(1, -(-d // WORD_BITS))
        if arr.ndim != 2 or arr.shape[1] != d_words:
            raise ParameterError(
                f"expected (n, {d_words}) words for d={d}, got shape {arr.shape}"
            )
        obj = object.__new__(cls)
        obj._words = arr
        obj._n = int(arr.shape[0])
        obj._d = int(d)
        return obj

    # ------------------------------------------------------------------
    # Shape and raw access.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows."""
        return self._n

    @property
    def d(self) -> int:
        """Number of items (columns)."""
        return self._d

    @property
    def d_words(self) -> int:
        """uint64 words per row."""
        return int(self._words.shape[1])

    @property
    def words(self) -> np.ndarray:
        """The ``(n, d_words)`` packed row words (do not mutate)."""
        return self._words

    def row_words(self, i: int) -> np.ndarray:
        """Packed words of row ``i``."""
        return self._words[i]

    def to_matrix(self) -> np.ndarray:
        """Unpack back to the ``(n, d)`` boolean matrix."""
        return unpack_rows(self._words, self._d)

    def take(self, indices: Sequence[int] | np.ndarray) -> "PackedRows":
        """Packed view of the selected rows (with multiplicity, no repack).

        The packed-domain form of row subsampling: gathering uint64 words
        moves ``d / 8`` bytes per row instead of ``d`` booleans.
        """
        idx = np.asarray(indices, dtype=np.intp)
        return PackedRows.from_words(self._words[idx], self._d)

    def _check_item(self, j: int) -> int:
        if not 0 <= j < self._d:
            raise ParameterError(f"item {j} out of range for d={self._d}")
        return j

    # ------------------------------------------------------------------
    # Query-mask construction.
    # ------------------------------------------------------------------
    def query_mask(self, items: Sequence[int]) -> np.ndarray:
        """Packed ``(d_words,)`` indicator mask of an item sequence.

        Duplicate items OR into the same bit, so the mask's popcount is the
        number of *distinct* items.
        """
        mask = np.zeros(self._words.shape[1], dtype=np.uint64)
        for j in items:
            j = self._check_item(int(j))
            mask[j // WORD_BITS] |= np.uint64(1) << np.uint64(j % WORD_BITS)
        return mask

    def _query_masks(self, idx: np.ndarray) -> np.ndarray:
        """Packed masks for an ``(m, k)`` index array (``d`` = padding)."""
        m, k = idx.shape
        masks = np.zeros((m, self._words.shape[1]), dtype=np.uint64)
        if k == 0:
            return masks
        flat = idx.reshape(-1)
        valid = flat < self._d  # padding sentinel contributes no bit
        row_ids = np.repeat(np.arange(m, dtype=np.intp), k)[valid]
        cols = flat[valid]
        bits = np.uint64(1) << (cols % WORD_BITS).astype(np.uint64)
        np.bitwise_or.at(masks, (row_ids, cols // WORD_BITS), bits)
        return masks

    # ------------------------------------------------------------------
    # Containment kernels.
    # ------------------------------------------------------------------
    def contains(self, items: Sequence[int]) -> np.ndarray:
        """Boolean ``(n,)`` mask of rows containing every item in ``items``.

        One batched AND + popcount-equality pass over the packed rows:
        ``popcount(row & mask) == popcount(mask)`` holds exactly when
        ``row & mask == mask`` wordwise, so the test runs as an AND plus a
        word-equality reduction -- no popcount arrays materialized.  The
        empty itemset (and any empty mask) is contained in every row.
        """
        mask = self.query_mask(items)
        if not mask.any():
            return np.ones(self._n, dtype=bool)
        return ((self._words & mask) == mask).all(axis=1)

    def support(self, items: Sequence[int]) -> int:
        """Number of rows containing every item in ``items``."""
        return int(self.contains(items).sum())

    def contains_batch(
        self,
        itemsets: Iterable[Sequence[int]],
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Boolean ``(m, n)`` containment mask matrix for many itemsets.

        Row ``i`` of the result is ``contains(itemsets[i])``.  The query
        masks are built once per call (outside the shard loop); each shard
        then evaluates ``row & mask == mask`` word-at-a-time through
        preallocated scratch buffers, writing equality results straight
        into its disjoint output slice -- no per-chunk 3-D temporaries
        (the native tier instead early-exits per row on the first
        mismatching word).  ``workers`` shards the itemset axis (``None``
        = auto heuristic), ``backend`` picks the executor, and ``kernel``
        the implementation tier.
        """
        batch = [tuple(t) for t in itemsets]
        m = len(batch)
        out = np.empty((m, self._n), dtype=bool)
        if m == 0:
            return out
        if max(len(t) for t in batch) == 0:
            out[:] = True
            return out
        idx = _batch_index_array(batch, self._d)
        masks = self._query_masks(idx)
        block = self._n * self._words.shape[1]
        chunk = max(1, _ROW_BATCH_ELEMS // max(1, self._n))
        _run_job(
            "contains",
            arrays={"words": self._words, "masks": masks},
            outs={"mask": out},
            total=m,
            word_ops=m * block,
            workers=workers,
            backend=backend,
            kernel=kernel,
            params={"chunk": int(chunk)},
        )
        return out

    def supports_batch(
        self,
        itemsets: Iterable[Sequence[int]],
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Support counts for many itemsets via the row-containment kernel.

        Equivalent to ``contains_batch(...).sum(axis=1)``.  Prefer
        :meth:`PackedColumns.supports_batch` when only counts are needed --
        the column kernel touches ``k`` columns per query instead of every
        row -- and this one when the masks are needed anyway.
        """
        return self.contains_batch(
            itemsets, workers=workers, backend=backend, kernel=kernel
        ).sum(axis=1, dtype=np.int64)

    def __repr__(self) -> str:
        return f"PackedRows(n={self._n}, d={self._d}, d_words={self.d_words})"
