"""Loader for the cffi-compiled native kernel tier (graceful by design).

:func:`load` returns the :class:`NativeKernels` wrapper around the
compiled extension, or ``None`` when the native tier cannot be built --
and it **never raises**: no cffi, no C compiler, an unwritable cache
directory, or a failed build all degrade to ``None`` with the reason
recorded (:func:`unavailable_reason`).  The kernel dispatch layer in
:mod:`repro.db.packed` falls back to the numpy tier in that case,
warning once only when the native tier was *explicitly* requested
(``kernel="native"`` or ``REPRO_EVAL_KERNEL=native``); the ``auto``
tier falls back silently.

Where the extension comes from, in order:

1. A prebuilt ``repro.db._repro_native`` submodule (the ``setup.py``
   cffi build hook, ``REPRO_BUILD_NATIVE=1 pip install .[native]``).
2. A cached build under ``$REPRO_NATIVE_CACHE`` (default
   ``~/.cache/repro/native``), keyed by a hash of the C source, the cdef,
   and the interpreter ABI tag -- editing ``_kernels.c`` invalidates the
   cache, and CI caches this directory between runs.
3. A fresh cffi compile into that cache: built in a private temporary
   subdirectory, then atomically renamed into place, so concurrent
   first-use compiles (e.g. spawn-context pool workers) cannot observe a
   half-written extension.

The compiled functions are plain C over raw pointers; cffi releases the
GIL around every call, which is what lets the ``thread`` shard backend
scale on the native tier.  :class:`NativeKernels` validates dtype and
contiguity before handing out ``arr.ctypes.data`` pointers -- the shard
kernels in :mod:`repro.db.packed` always satisfy both, but a raw-pointer
API must not trust its callers silently.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import sys
import sysconfig
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

from ..errors import ParameterError

__all__ = [
    "NativeKernels",
    "available",
    "load",
    "unavailable_reason",
    "warn_unavailable",
    "NATIVE_CACHE_ENV",
]

#: Environment override for the runtime build-cache directory.
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE"

_LOCK = threading.Lock()

#: Lazy singleton state: resolved at most once per process.
_STATE: dict = {"checked": False, "lib": None, "reason": None, "warned": False}


class NativeKernels:
    """Typed numpy-array facade over the raw C kernel entry points.

    Thin by design: validate dtype/contiguity, cast to pointers, call.
    ``lo``/``hi`` follow the shard-kernel convention (a contiguous index
    range of the output's leading axis).
    """

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib

    def _ptr(self, ctype: str, arr: np.ndarray, dtype) -> object:
        if arr.dtype != dtype or not arr.flags.c_contiguous:
            raise ParameterError(
                f"native kernel needs C-contiguous {np.dtype(dtype).name} "
                f"array, got {arr.dtype.name}"
                f"{'' if arr.flags.c_contiguous else ' (non-contiguous)'}"
            )
        return self._ffi.cast(ctype, arr.ctypes.data)

    def index_supports(
        self, ext: np.ndarray, idx: np.ndarray, counts: np.ndarray, lo: int, hi: int
    ) -> None:
        """Fused AND + popcount over the (m, k) query index rows [lo, hi)."""
        self._lib.repro_index_supports(
            self._ptr("const uint64_t *", ext, np.uint64),
            self._ptr("const intptr_t *", idx, np.intp),
            self._ptr("int64_t *", counts, np.int64),
            lo, hi, idx.shape[1], ext.shape[1],
        )

    def combination_supports(
        self,
        words: np.ndarray,
        pmask: np.ndarray,
        leaf_prefix: np.ndarray,
        last: np.ndarray,
        counts: np.ndarray,
        lo: int,
        hi: int,
    ) -> None:
        """Prefix-sharing leaf sweep over leaves [lo, hi), fused popcount."""
        self._lib.repro_combination_supports(
            self._ptr("const uint64_t *", words, np.uint64),
            self._ptr("const uint64_t *", pmask, np.uint64),
            self._ptr("const intptr_t *", leaf_prefix, np.intp),
            self._ptr("const intptr_t *", last, np.intp),
            self._ptr("int64_t *", counts, np.int64),
            lo, hi, words.shape[1],
        )

    def contains(
        self, words: np.ndarray, masks: np.ndarray, out: np.ndarray, lo: int, hi: int
    ) -> None:
        """Early-exit row containment for query masks [lo, hi)."""
        self._lib.repro_contains(
            self._ptr("const uint64_t *", words, np.uint64),
            self._ptr("const uint64_t *", masks, np.uint64),
            self._ptr("uint8_t *", out, np.bool_),
            lo, hi, words.shape[0], words.shape[1],
        )


def _cache_root() -> Path:
    env = os.environ.get(NATIVE_CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native"


def _module_tag() -> str:
    """Hash of everything that shapes the compiled artifact."""
    from ._build_native import CDEF, SOURCE_PATH, _compile_args

    digest = hashlib.sha256()
    digest.update(SOURCE_PATH.read_bytes())
    digest.update(CDEF.encode())
    digest.update(" ".join(_compile_args()).encode())
    digest.update((sysconfig.get_config_var("SOABI") or sys.version).encode())
    return digest.hexdigest()[:12]


def _load_extension(path: Path, module_name: str) -> NativeKernels:
    """Import one compiled extension file under its built module name."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load native extension from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return NativeKernels(module.ffi, module.lib)


def _ext_suffix() -> str:
    return sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def _build_in_cache() -> NativeKernels:
    """Compile (or reuse) the hashed extension in the cache directory."""
    from ._build_native import make_ffibuilder

    module_name = f"_repro_native_{_module_tag()}"
    cache_dir = _cache_root()
    target = cache_dir / (module_name + _ext_suffix())
    if target.exists():
        return _load_extension(target, module_name)
    cache_dir.mkdir(parents=True, exist_ok=True)
    build_dir = Path(tempfile.mkdtemp(prefix="build_", dir=cache_dir))
    try:
        built = make_ffibuilder(module_name).compile(
            tmpdir=str(build_dir), verbose=False
        )
        # Atomic publication: a concurrent builder either wins the replace
        # race or overwrites with an identical artifact -- never partial.
        os.replace(built, target)
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)
    return _load_extension(target, module_name)


def _load_impl() -> NativeKernels:
    try:
        from . import _repro_native  # type: ignore[attr-defined]

        return NativeKernels(_repro_native.ffi, _repro_native.lib)
    except ImportError:
        pass
    try:
        import cffi  # noqa: F401
    except ImportError:
        raise RuntimeError(
            "cffi is not installed (pip install 'repro[native]' enables "
            "the native kernel tier)"
        ) from None
    return _build_in_cache()


def load() -> NativeKernels | None:
    """The native kernels, building them on first use; ``None`` if unavailable.

    Never raises: any failure (missing cffi, missing compiler, unwritable
    cache) is captured as :func:`unavailable_reason` and the numpy tier
    takes over.
    """
    if _STATE["checked"]:
        return _STATE["lib"]
    with _LOCK:
        if not _STATE["checked"]:
            try:
                _STATE["lib"] = _load_impl()
            except Exception as exc:  # degrade, never break the query path
                _STATE["reason"] = f"{type(exc).__name__}: {exc}"
                _STATE["lib"] = None
            _STATE["checked"] = True
        return _STATE["lib"]


def available() -> bool:
    """Whether the compiled native tier loaded (building it if needed)."""
    return load() is not None


def unavailable_reason() -> str | None:
    """Why :func:`load` returned ``None`` (``None`` while it works)."""
    load()
    return _STATE["reason"]


def warn_unavailable() -> None:
    """One-time warning that an explicit native request fell back to numpy."""
    if _STATE["warned"]:
        return
    _STATE["warned"] = True
    warnings.warn(
        "native kernel tier requested but unavailable "
        f"({unavailable_reason() or 'unknown reason'}); "
        "falling back to the numpy kernels",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_for_tests() -> None:
    """Forget the cached resolution (test hook; not public API)."""
    with _LOCK:
        _STATE.update(checked=False, lib=None, reason=None, warned=False)
