"""cffi build recipe for the native kernel extension.

One :class:`cffi.FFI` builder, used from two places:

* ``setup.py`` -- the optional build hook (``REPRO_BUILD_NATIVE=1 pip
  install -e .[native]``) compiles ``repro.db._repro_native`` at install
  time via ``cffi_modules``, so the extension is a plain prebuilt
  submodule.
* :mod:`repro.db._native` -- the runtime loader compiles the same source
  on first use into a per-source-hash cache directory when no prebuilt
  module exists.  Either way the compiled module exposes the standard
  out-of-line cffi pair ``(ffi, lib)``.

The C source lives in ``_kernels.c`` next to this file; :data:`CDEF`
declares exactly the three exported kernel entry points.  Importing this
module requires :mod:`cffi`; everything else in the package must not
import it unguarded.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

from cffi import FFI

#: Declarations of the exported kernels (the cffi cdef; must match
#: ``_kernels.c`` exactly).
CDEF = """
void repro_index_supports(const uint64_t *ext, const intptr_t *idx,
                          int64_t *counts, intptr_t lo, intptr_t hi,
                          intptr_t k, intptr_t n_words);
void repro_combination_supports(const uint64_t *words, const uint64_t *pmask,
                                const intptr_t *leaf_prefix,
                                const intptr_t *last, int64_t *counts,
                                intptr_t lo, intptr_t hi, intptr_t n_words);
void repro_contains(const uint64_t *rows, const uint64_t *masks,
                    uint8_t *out, intptr_t lo, intptr_t hi, intptr_t n,
                    intptr_t d_words);
"""

#: Path of the C source next to this module.
SOURCE_PATH = Path(__file__).resolve().parent / "_kernels.c"


def _compile_args() -> list[str]:
    """Compiler flags: aggressive but portable within one host family.

    ``-mpopcnt`` turns ``__builtin_popcountll`` into the single POPCNT
    instruction on x86-64 (available on every chip since ~2008; without
    it gcc emits a libgcc byte-table call, forfeiting most of the win).
    Non-GCC-compatible toolchains (MSVC) get no extra flags.
    """
    if os.name == "nt":  # pragma: no cover - linux container
        return []
    args = ["-O3"]
    if platform.machine().lower() in ("x86_64", "amd64", "i686", "i386"):
        args.append("-mpopcnt")
    return args


def make_ffibuilder(module_name: str = "repro.db._repro_native") -> FFI:
    """An :class:`cffi.FFI` set up to compile the kernels as ``module_name``."""
    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(
        module_name,
        SOURCE_PATH.read_text(),
        extra_compile_args=_compile_args(),
    )
    return builder


#: The instance ``setup.py``'s ``cffi_modules`` hook points at.
ffibuilder = make_ffibuilder()

if __name__ == "__main__":  # pragma: no cover - manual build helper
    ffibuilder.compile(verbose=True)
