"""Transaction-format interchange: market-basket data as item lists.

Real market-basket corpora (the paper's motivating workload) arrive as
transaction files -- one line of item ids per basket -- not as dense
binary matrices.  This module converts both ways and reads/writes the
standard whitespace-separated text format, so the library's miners and
sketches run on external datasets.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from .database import BinaryDatabase
from .itemset import Itemset

__all__ = [
    "transactions_to_database",
    "database_to_transactions",
    "read_transactions",
    "write_transactions",
]


def transactions_to_database(
    transactions: Sequence[Iterable[int]], d: int | None = None
) -> BinaryDatabase:
    """Build a binary database from per-row item-id lists.

    Parameters
    ----------
    transactions:
        One iterable of attribute ids per row; duplicates within a row are
        collapsed.
    d:
        Number of attributes; defaults to ``1 + max item id``.

    Raises
    ------
    ParameterError
        On empty input, negative ids, or ids ``>= d``.
    """
    baskets = [sorted(set(int(i) for i in t)) for t in transactions]
    if not baskets:
        raise ParameterError("transactions must be non-empty")
    max_id = max((b[-1] for b in baskets if b), default=0)
    if any(b and b[0] < 0 for b in baskets):
        raise ParameterError("item ids must be non-negative")
    if d is None:
        d = max_id + 1
    if max_id >= d:
        raise ParameterError(f"item id {max_id} exceeds d={d}")
    rows = np.zeros((len(baskets), d), dtype=bool)
    for i, basket in enumerate(baskets):
        rows[i, basket] = True
    return BinaryDatabase(rows)


def database_to_transactions(db: BinaryDatabase) -> list[list[int]]:
    """The inverse view: each row as its sorted list of item ids."""
    return [np.flatnonzero(db.row(i)).tolist() for i in range(db.n)]


def write_transactions(db: BinaryDatabase, path: str | Path) -> None:
    """Write the standard text format: one space-separated basket per line.

    Empty baskets are written as empty lines so the row count round-trips.
    """
    lines = (
        " ".join(str(i) for i in basket)
        for basket in database_to_transactions(db)
    )
    Path(path).write_text("\n".join(lines) + "\n")


def read_transactions(path: str | Path, d: int | None = None) -> BinaryDatabase:
    """Read the standard text format back into a database.

    Raises
    ------
    ParameterError
        On unparseable tokens or an empty file.
    """
    text = Path(path).read_text()
    baskets: list[list[int]] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        items = []
        for token in line.split():
            if not token.lstrip("-").isdigit():
                raise ParameterError(
                    f"{path}:{line_no}: unparseable item id {token!r}"
                )
            items.append(int(token))
        baskets.append(items)
    return transactions_to_database(baskets, d=d)
