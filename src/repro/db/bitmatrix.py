"""Low-level packed bit-matrix helpers.

The paper's space bounds are stated in *bits*, so the library needs an exact,
canonical bit-level representation for boolean matrices.  This module
provides pack/unpack primitives built on :func:`numpy.packbits` plus small
utilities (bit I/O against ``bytes``, popcounts, row containment tests) that
the database and sketch layers share.

All functions operate on ``numpy.ndarray`` with ``dtype=bool`` in row-major
order and treat the matrix shape as external metadata: a packed buffer never
stores its own shape, which keeps sketch size accounting honest (shape is
part of the public parameters ``(n, d)``, not of the payload).
"""

from __future__ import annotations

import numpy as np

from ..errors import SketchSizeError

__all__ = [
    "pack_bits",
    "unpack_bits",
    "pack_matrix",
    "unpack_matrix",
    "bits_to_bytes",
    "bytes_to_bits",
    "int_to_bits",
    "bits_to_int",
    "popcount_rows",
    "rows_containing",
]


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a 1-D boolean array into bytes (big-endian within each byte).

    The final partial byte, if any, is zero padded.  Inverse of
    :func:`unpack_bits` given the original length.
    """
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise SketchSizeError(f"pack_bits expects a 1-D array, got shape {arr.shape}")
    return np.packbits(arr.astype(np.uint8)).tobytes()


def unpack_bits(buf: bytes, length: int) -> np.ndarray:
    """Unpack ``length`` bits from ``buf`` into a boolean array.

    Raises
    ------
    SketchSizeError
        If ``buf`` is too short to contain ``length`` bits.
    """
    if length < 0:
        raise SketchSizeError(f"length must be non-negative, got {length}")
    need = (length + 7) // 8
    if len(buf) < need:
        raise SketchSizeError(
            f"buffer of {len(buf)} bytes cannot hold {length} bits ({need} needed)"
        )
    raw = np.frombuffer(buf, dtype=np.uint8, count=need)
    return np.unpackbits(raw)[:length].astype(bool)


def pack_matrix(matrix: np.ndarray) -> bytes:
    """Pack a 2-D boolean matrix row-major into bytes."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise SketchSizeError(f"pack_matrix expects a 2-D array, got shape {arr.shape}")
    return pack_bits(arr.astype(bool).reshape(-1))


def unpack_matrix(buf: bytes, n_rows: int, n_cols: int) -> np.ndarray:
    """Unpack an ``(n_rows, n_cols)`` boolean matrix packed by :func:`pack_matrix`."""
    flat = unpack_bits(buf, n_rows * n_cols)
    return flat.reshape(n_rows, n_cols)


def bits_to_bytes(n_bits: int) -> int:
    """Number of bytes needed to store ``n_bits`` bits."""
    return (n_bits + 7) // 8


def bytes_to_bits(n_bytes: int) -> int:
    """Number of bits held by ``n_bytes`` bytes."""
    return 8 * n_bytes


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode a non-negative integer as ``width`` bits, most significant first.

    Vectorized for any width: the value is serialized big-endian via
    ``int.to_bytes`` and expanded with one :func:`numpy.unpackbits` call
    (no per-bit Python loop); widths above 64 work because the arithmetic
    stays in Python integers.

    Raises
    ------
    SketchSizeError
        If ``value`` does not fit in ``width`` bits or is negative.
    """
    if value < 0:
        raise SketchSizeError(f"int_to_bits requires value >= 0, got {value}")
    if width < 0 or value >> width:
        raise SketchSizeError(f"value {value} does not fit in {width} bits")
    if width == 0:
        return np.zeros(0, dtype=bool)
    pad = -width % 8
    buf = (value << pad).to_bytes((width + pad) // 8, "big")
    return np.unpackbits(np.frombuffer(buf, dtype=np.uint8))[:width].astype(bool)


def bits_to_int(bits: np.ndarray) -> int:
    """Decode a most-significant-bit-first boolean array into an integer.

    Vectorized for any width via one :func:`numpy.packbits` call plus an
    exact big-endian ``int.from_bytes`` (arbitrary-precision, so widths
    above 64 are exact).
    """
    arr = np.asarray(bits, dtype=bool)
    if arr.size == 0:
        return 0
    pad = -arr.size % 8
    return int.from_bytes(np.packbits(arr).tobytes(), "big") >> pad


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row number of ones of a boolean matrix."""
    return np.asarray(matrix, dtype=bool).sum(axis=1)


def rows_containing(matrix: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """Boolean mask of rows that have a 1 in *every* listed column.

    ``columns`` is an integer index array; an empty selection means every row
    qualifies (the empty itemset is contained in every row, so its frequency
    is 1 -- matching the convention of Section 1.3).
    """
    mat = np.asarray(matrix, dtype=bool)
    cols = np.asarray(columns, dtype=np.intp)
    if cols.size == 0:
        return np.ones(mat.shape[0], dtype=bool)
    return mat[:, cols].all(axis=1)
