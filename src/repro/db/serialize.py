"""Bit-exact serialization for sketch payloads.

Lower bounds are statements about *bits*, so every sketch in this library
reports its size from a canonical serialized payload rather than from Python
object sizes.  :class:`BitWriter` / :class:`BitReader` provide a tiny,
dependency-free bit stream with the primitives the sketches need:

* raw bit arrays (database rows),
* fixed-width unsigned integers (row counts, indices),
* quantized frequencies to precision ``epsilon`` -- the paper charges
  ``log(1/epsilon)`` bits per stored frequency (Definition 7's accounting),
  which is exactly what :meth:`BitWriter.write_quantized` uses.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SketchSizeError
from .bitmatrix import bits_to_int, int_to_bits, pack_bits, unpack_bits

__all__ = [
    "BitWriter",
    "BitReader",
    "quantize_frequency",
    "dequantize_frequency",
    "frequency_bits",
]


def frequency_bits(epsilon: float) -> int:
    """Bits needed to store a frequency in ``[0, 1]`` to precision ``epsilon``.

    The paper's RELEASE-ANSWERS accounting charges ``log(1/epsilon)`` bits
    per answer; we use ``ceil(log2(1/epsilon)) + 1`` so that the quantizer's
    grid ``{0, eps, 2 eps, ...}`` (at most ``1/eps + 1`` points) always fits.
    """
    if not 0.0 < epsilon < 1.0:
        raise SketchSizeError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log2(1.0 / epsilon)) + 1)


def quantize_frequency(value: float, epsilon: float) -> int:
    """Quantize ``value`` in ``[0, 1]`` to the nearest multiple of ``epsilon``."""
    if not 0.0 <= value <= 1.0 + 1e-12:
        raise SketchSizeError(f"frequency must lie in [0, 1], got {value}")
    return int(round(min(value, 1.0) / epsilon))


def dequantize_frequency(code: int, epsilon: float) -> float:
    """Inverse of :func:`quantize_frequency` (clamped to ``[0, 1]``)."""
    return min(1.0, code * epsilon)


class BitWriter:
    """Append-only bit stream."""

    def __init__(self) -> None:
        self._bits: list[bool] = []

    def write_bit(self, bit: bool | int) -> None:
        """Append a single bit."""
        self._bits.append(bool(bit))

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 1-D boolean array."""
        self._bits.extend(bool(b) for b in np.asarray(bits, dtype=bool))

    def write_uint(self, value: int, width: int) -> None:
        """Append a ``width``-bit unsigned integer, MSB first."""
        self.write_bits(int_to_bits(value, width))

    def write_quantized(self, value: float, epsilon: float) -> None:
        """Append a frequency quantized to precision ``epsilon``."""
        self.write_uint(quantize_frequency(value, epsilon), frequency_bits(epsilon))

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def n_bits(self) -> int:
        """Number of bits written so far: the sketch's exact size."""
        return len(self._bits)

    def getvalue(self) -> bytes:
        """Packed payload (zero padded to a byte boundary)."""
        return pack_bits(np.array(self._bits, dtype=bool)) if self._bits else b""


class BitReader:
    """Sequential reader over a payload produced by :class:`BitWriter`."""

    def __init__(self, buf: bytes, n_bits: int) -> None:
        self._bits = unpack_bits(buf, n_bits)
        self._pos = 0

    def _take(self, count: int) -> np.ndarray:
        if self._pos + count > len(self._bits):
            raise SketchSizeError(
                f"bit stream exhausted: wanted {count} bits at offset {self._pos} "
                f"of {len(self._bits)}"
            )
        out = self._bits[self._pos : self._pos + count]
        self._pos += count
        return out

    def read_bit(self) -> bool:
        """Read a single bit."""
        return bool(self._take(1)[0])

    def read_bits(self, count: int) -> np.ndarray:
        """Read ``count`` bits as a boolean array."""
        return self._take(count)

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer, MSB first."""
        return bits_to_int(self._take(width))

    def read_quantized(self, epsilon: float) -> float:
        """Read a frequency quantized to precision ``epsilon``."""
        return dequantize_frequency(self.read_uint(frequency_bits(epsilon)), epsilon)

    @property
    def remaining(self) -> int:
        """Bits left unread."""
        return len(self._bits) - self._pos
