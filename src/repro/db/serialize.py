"""Bit-exact serialization for sketch payloads.

Lower bounds are statements about *bits*, so every sketch in this library
reports its size from a canonical serialized payload rather than from Python
object sizes.  :class:`BitWriter` / :class:`BitReader` provide a tiny,
dependency-free bit stream with the primitives the sketches need:

* raw bit arrays (database rows),
* fixed-width unsigned integers (row counts, indices), single or batched,
* quantized frequencies to precision ``epsilon`` -- the paper charges
  ``log(1/epsilon)`` bits per stored frequency (Definition 7's accounting),
  which is exactly what :meth:`BitWriter.write_quantized` uses.

Both ends are vectorized: the writer accumulates whole boolean chunks and
packs them with one :func:`numpy.packbits` pass at :meth:`BitWriter.getvalue`
time (no per-bit Python list), and batched integer fields go through a
single shift-and-mask broadcast per call (:meth:`BitWriter.write_uints` /
:meth:`BitReader.read_uints`).  The reader is *strict*: the payload's byte
length must match the declared bit count exactly and the zero padding in the
final byte must actually be zero, so a frame whose accounting lies about its
payload is rejected instead of silently accepted.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import SketchSizeError
from .bitmatrix import bits_to_int, int_to_bits

__all__ = [
    "BitWriter",
    "BitReader",
    "quantize_frequency",
    "dequantize_frequency",
    "frequency_bits",
]


def frequency_bits(epsilon: float) -> int:
    """Bits needed to store a frequency in ``[0, 1]`` to precision ``epsilon``.

    The paper's RELEASE-ANSWERS accounting charges ``log(1/epsilon)`` bits
    per answer; we use ``ceil(log2(1/epsilon)) + 1`` so that the quantizer's
    grid ``{0, eps, 2 eps, ...}`` (at most ``1/eps + 1`` points) always fits.
    """
    if not 0.0 < epsilon < 1.0:
        raise SketchSizeError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log2(1.0 / epsilon)) + 1)


def quantize_frequency(value: float, epsilon: float) -> int:
    """Quantize ``value`` in ``[0, 1]`` to the nearest multiple of ``epsilon``."""
    if not 0.0 <= value <= 1.0 + 1e-12:
        raise SketchSizeError(f"frequency must lie in [0, 1], got {value}")
    return int(round(min(value, 1.0) / epsilon))


def dequantize_frequency(code: int, epsilon: float) -> float:
    """Inverse of :func:`quantize_frequency` (clamped to ``[0, 1]``)."""
    return min(1.0, code * epsilon)


def _uints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """``(len(values) * width,)`` boolean array, MSB first per value.

    One broadcasted shift-and-mask for the whole batch; values must fit in
    ``width`` bits and ``width`` must be 1..64 (wider single values go
    through :func:`int_to_bits`, which is arbitrary precision).
    """
    if not 1 <= width <= 64:
        raise SketchSizeError(f"batched uints need 1 <= width <= 64, got {width}")
    vals = np.asarray(values, dtype=np.uint64)
    if vals.ndim != 1:
        raise SketchSizeError(f"expected a 1-D value array, got shape {vals.shape}")
    if width < 64 and vals.size and int(vals.max()) >> width:
        bad = int(vals.max())
        raise SketchSizeError(f"value {bad} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return ((vals[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool).reshape(-1)


def _bits_to_uints(bits: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`_uints_to_bits`: decode consecutive ``width``-bit fields."""
    if not 1 <= width <= 64:
        raise SketchSizeError(f"batched uints need 1 <= width <= 64, got {width}")
    arr = np.asarray(bits, dtype=bool)
    if arr.size % width:
        raise SketchSizeError(
            f"bit run of {arr.size} does not divide into {width}-bit fields"
        )
    fields = arr.reshape(-1, width).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (fields << shifts[None, :]).sum(axis=1, dtype=np.uint64)


class BitWriter:
    """Append-only bit stream backed by whole numpy chunks.

    Writes append boolean chunks to an internal list; nothing is visited
    per-bit in Python.  :meth:`getvalue` concatenates the chunks once and
    packs them with a single vectorized :func:`numpy.packbits` call
    (big-endian within each byte, zero padded to a byte boundary).
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._n_bits = 0

    def write_bit(self, bit: bool | int) -> None:
        """Append a single bit."""
        self._chunks.append(np.array([bool(bit)]))
        self._n_bits += 1

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 1-D boolean array as one chunk.

        The chunk is copied, so callers may reuse or mutate scratch
        buffers after writing without corrupting the payload.
        """
        arr = np.array(bits, dtype=bool, copy=True).reshape(-1)
        self._chunks.append(arr)
        self._n_bits += arr.size

    def write_uint(self, value: int, width: int) -> None:
        """Append a ``width``-bit unsigned integer, MSB first."""
        self.write_bits(int_to_bits(value, width))

    def write_uints(self, values: Sequence[int] | np.ndarray, width: int) -> None:
        """Append many ``width``-bit unsigned integers in one vectorized pass."""
        self.write_bits(_uints_to_bits(np.asarray(values), width))

    def write_quantized(self, value: float, epsilon: float) -> None:
        """Append a frequency quantized to precision ``epsilon``."""
        self.write_uint(quantize_frequency(value, epsilon), frequency_bits(epsilon))

    def write_quantized_batch(
        self, values: Sequence[float] | np.ndarray, epsilon: float
    ) -> None:
        """Append many quantized frequencies in one vectorized pass.

        Codes match :func:`quantize_frequency` exactly (round-half-to-even,
        numpy's and Python's shared convention), so batch and per-value
        writes produce identical payloads.
        """
        vals = np.asarray(values, dtype=float)
        if vals.size and (vals.min() < 0.0 or vals.max() > 1.0 + 1e-12):
            bad = vals.min() if vals.min() < 0.0 else vals.max()
            raise SketchSizeError(f"frequency must lie in [0, 1], got {bad}")
        codes = np.rint(np.minimum(vals, 1.0) / epsilon).astype(np.uint64)
        self.write_uints(codes, frequency_bits(epsilon))

    def __len__(self) -> int:
        return self._n_bits

    @property
    def n_bits(self) -> int:
        """Number of bits written so far: the sketch's exact size."""
        return self._n_bits

    def getvalue(self) -> bytes:
        """Packed payload (zero padded to a byte boundary)."""
        if not self._n_bits:
            return b""
        if len(self._chunks) > 1:
            # Coalesce so repeated getvalue calls stay cheap.
            self._chunks = [np.concatenate(self._chunks)]
        return np.packbits(self._chunks[0].astype(np.uint8)).tobytes()


class BitReader:
    """Strict sequential reader over a payload produced by :class:`BitWriter`.

    The constructor validates the frame-level invariants the accounting
    rests on:

    * ``len(buf)`` must be exactly ``ceil(n_bits / 8)`` -- a payload that is
      too short cannot hold the declared bits, and one that is too long is
      smuggling uncounted bits past :meth:`size_in_bits` accounting;
    * the zero padding after bit ``n_bits`` in the final byte must actually
      be zero -- nonzero trailing bits mean the payload was corrupted or
      written by a different convention.
    """

    def __init__(self, buf: bytes, n_bits: int) -> None:
        if n_bits < 0:
            raise SketchSizeError(f"n_bits must be non-negative, got {n_bits}")
        need = (n_bits + 7) // 8
        if len(buf) != need:
            raise SketchSizeError(
                f"payload of {len(buf)} bytes disagrees with declared "
                f"{n_bits} bits ({need} bytes expected)"
            )
        raw = np.frombuffer(buf, dtype=np.uint8)
        bits = np.unpackbits(raw) if raw.size else np.zeros(0, dtype=np.uint8)
        if bits[n_bits:].any():
            raise SketchSizeError(
                f"nonzero padding bits after declared bit {n_bits}: "
                "payload corrupt or misdeclared"
            )
        self._bits = bits[:n_bits].astype(bool)
        self._pos = 0

    def _take(self, count: int) -> np.ndarray:
        if count < 0:
            raise SketchSizeError(f"cannot read {count} bits")
        if self._pos + count > len(self._bits):
            raise SketchSizeError(
                f"bit stream exhausted: wanted {count} bits at offset {self._pos} "
                f"of {len(self._bits)}"
            )
        out = self._bits[self._pos : self._pos + count]
        self._pos += count
        return out

    def read_bit(self) -> bool:
        """Read a single bit."""
        return bool(self._take(1)[0])

    def read_bits(self, count: int) -> np.ndarray:
        """Read ``count`` bits as a boolean array."""
        return self._take(count)

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer, MSB first."""
        return bits_to_int(self._take(width))

    def read_uints(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` consecutive ``width``-bit integers in one pass."""
        return _bits_to_uints(self._take(count * width), width)

    def read_quantized(self, epsilon: float) -> float:
        """Read a frequency quantized to precision ``epsilon``."""
        return dequantize_frequency(self.read_uint(frequency_bits(epsilon)), epsilon)

    def read_quantized_batch(self, count: int, epsilon: float) -> np.ndarray:
        """Read ``count`` quantized frequencies as one float vector."""
        codes = self.read_uints(count, frequency_bits(epsilon))
        return np.minimum(1.0, codes.astype(float) * epsilon)

    @property
    def remaining(self) -> int:
        """Bits left unread."""
        return len(self._bits) - self._pos
