"""Bit-exact serialization for sketch payloads.

Lower bounds are statements about *bits*, so every sketch in this library
reports its size from a canonical serialized payload rather than from Python
object sizes.  :class:`BitWriter` / :class:`BitReader` provide a tiny,
dependency-free bit stream with the primitives the sketches need:

* raw bit arrays (database rows),
* fixed-width unsigned integers (row counts, indices), single or batched,
* quantized frequencies to precision ``epsilon`` -- the paper charges
  ``log(1/epsilon)`` bits per stored frequency (Definition 7's accounting),
  which is exactly what :meth:`BitWriter.write_quantized` uses.

Both ends are vectorized: the writer accumulates whole boolean chunks and
packs them with one :func:`numpy.packbits` pass at :meth:`BitWriter.getvalue`
time (no per-bit Python list), and batched integer fields go through a
single shift-and-mask broadcast per call (:meth:`BitWriter.write_uints` /
:meth:`BitReader.read_uints`).  The reader is *strict*: the payload's byte
length must match the declared bit count exactly and the zero padding in the
final byte must actually be zero, so a frame whose accounting lies about its
payload is rejected instead of silently accepted.

Both ends are also *stream-first* (the wire-format v2 transport):
:meth:`BitWriter.iter_packed` / :meth:`BitWriter.flush_to` drain the packed
payload incrementally in bounded windows (freeing the buffer as they go),
and :meth:`BitReader.windowed` reads sequentially from an iterator of byte
chunks holding only one window of unpacked bits at a time -- giant payloads
cross a file boundary without either side materializing the full byte
string.

The module additionally provides the byte-level varint primitives the v2
frame header is built from: unsigned LEB128 (:func:`encode_uvarint` /
:func:`read_uvarint`) and zigzag-mapped signed LEB128
(:func:`encode_svarint` / :func:`read_svarint`).  Encodings are canonical
(no padded continuation groups) and decoding rejects non-canonical or
oversized inputs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import IO, Iterable, Iterator, Sequence

import numpy as np

from ..errors import SketchSizeError
from .bitmatrix import bits_to_int, int_to_bits

__all__ = [
    "BitWriter",
    "BitReader",
    "quantize_frequency",
    "dequantize_frequency",
    "frequency_bits",
    "encode_uvarint",
    "encode_uvarints",
    "encode_svarint",
    "read_uvarint",
    "read_svarint",
    "decode_uvarints",
    "zigzag_encode",
    "zigzag_decode",
]

#: Default window size (bytes) for streaming payload drains and reads.
DEFAULT_CHUNK_BYTES = 1 << 16

#: LEB128 decode cap: 10 groups cover every 64-bit value with headroom.
_MAX_VARINT_BYTES = 10


# ----------------------------------------------------------------------
# Varint primitives (LEB128 + zigzag): the v2 frame header's integers.
# ----------------------------------------------------------------------
def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as canonical unsigned LEB128."""
    if value < 0:
        raise SketchSizeError(f"uvarint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        group = value & 0x7F
        value >>= 7
        out.append(group | (0x80 if value else 0))
        if not value:
            return bytes(out)


def zigzag_encode(value: int) -> int:
    """Map a signed integer to the unsigned zigzag code (0, -1, 1, -2, ...)."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(code: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if code < 0:
        raise SketchSizeError(f"zigzag code must be non-negative, got {code}")
    return (code >> 1) ^ -(code & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer as zigzag LEB128."""
    return encode_uvarint(zigzag_encode(value))


def read_uvarint(stream: IO[bytes]) -> int:
    """Read one canonical unsigned LEB128 value from a binary stream.

    Raises
    ------
    SketchSizeError
        On truncation, a value wider than :data:`_MAX_VARINT_BYTES`
        groups, or a non-canonical encoding (padded zero group).
    """
    value = 0
    for index in range(_MAX_VARINT_BYTES):
        data = stream.read(1)
        if len(data) != 1:
            raise SketchSizeError("truncated varint")
        group = data[0]
        value |= (group & 0x7F) << (7 * index)
        if not group & 0x80:
            if group == 0 and index > 0:
                raise SketchSizeError("non-canonical varint (padded zero group)")
            return value
    raise SketchSizeError(f"varint exceeds {_MAX_VARINT_BYTES} bytes")


def read_svarint(stream: IO[bytes]) -> int:
    """Read one zigzag LEB128 value from a binary stream."""
    return zigzag_decode(read_uvarint(stream))


def uvarint_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of each value under canonical unsigned LEB128.

    Vectorized: lets callers price a varint run (the wire v3 delta
    payload) before paying for the encode.
    """
    vals = np.asarray(values, dtype=np.uint64).reshape(-1)
    lengths = np.ones(vals.size, dtype=np.int64)
    rest = vals >> np.uint64(7)
    while rest.any():
        lengths += rest != 0
        rest >>= np.uint64(7)
    return lengths


def encode_uvarints(values: np.ndarray) -> bytes:
    """Encode a batch of non-negative integers as back-to-back LEB128.

    Byte-identical to ``b"".join(encode_uvarint(v) for v in values)`` but
    vectorized: one pass per varint *byte position* (at most ten for
    64-bit values) instead of one per value.
    """
    vals = np.asarray(values, dtype=np.uint64).reshape(-1)
    if not vals.size:
        return b""
    lengths = uvarint_lengths(vals)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    for group in range(int(lengths.max())):
        mask = lengths > group
        groups = (vals[mask] >> np.uint64(7 * group)) & np.uint64(0x7F)
        cont = ((lengths[mask] > group + 1).astype(np.uint8)) << 7
        out[starts[mask] + group] = groups.astype(np.uint8) | cont
    return out.tobytes()


def decode_uvarints(buf: bytes, count: int) -> np.ndarray:
    """Decode exactly ``count`` back-to-back canonical LEB128 values.

    The whole buffer must be consumed: trailing bytes, truncated values,
    oversized values, and non-canonical encodings (padded zero groups)
    all raise :class:`~repro.errors.SketchSizeError`.  Vectorized like
    :func:`encode_uvarints`.
    """
    if count < 0:
        raise SketchSizeError(f"cannot decode {count} varints")
    data = np.frombuffer(buf, dtype=np.uint8)
    terminals = np.flatnonzero((data & 0x80) == 0)
    if terminals.size != count:
        raise SketchSizeError(
            f"varint run holds {terminals.size} values, expected {count}"
        )
    if count == 0:
        if data.size:
            raise SketchSizeError("trailing bytes after varint run")
        return np.zeros(0, dtype=np.uint64)
    if int(terminals[-1]) != data.size - 1:
        raise SketchSizeError("trailing bytes after varint run")
    starts = np.concatenate(([0], terminals[:-1] + 1))
    lengths = terminals - starts + 1
    max_len = int(lengths.max())
    if max_len > _MAX_VARINT_BYTES:
        raise SketchSizeError(f"varint exceeds {_MAX_VARINT_BYTES} bytes")
    padded = (lengths > 1) & (data[terminals] == 0)
    if padded.any():
        raise SketchSizeError("non-canonical varint (padded zero group)")
    # A 10-group varint's final group may only carry bit 63 (value <= 1).
    if max_len == _MAX_VARINT_BYTES:
        overflow = (lengths == _MAX_VARINT_BYTES) & (data[terminals] > 1)
        if overflow.any():
            raise SketchSizeError("varint value exceeds 64 bits")
    values = np.zeros(count, dtype=np.uint64)
    for group in range(max_len):
        mask = lengths > group
        values[mask] |= (
            (data[starts[mask] + group] & 0x7F).astype(np.uint64)
            << np.uint64(7 * group)
        )
    return values


def frequency_bits(epsilon: float) -> int:
    """Bits needed to store a frequency in ``[0, 1]`` to precision ``epsilon``.

    The paper's RELEASE-ANSWERS accounting charges ``log(1/epsilon)`` bits
    per answer; we use ``ceil(log2(1/epsilon)) + 1`` so that the quantizer's
    grid ``{0, eps, 2 eps, ...}`` (at most ``1/eps + 1`` points) always fits.
    """
    if not 0.0 < epsilon < 1.0:
        raise SketchSizeError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log2(1.0 / epsilon)) + 1)


def quantize_frequency(value: float, epsilon: float) -> int:
    """Quantize ``value`` in ``[0, 1]`` to the nearest multiple of ``epsilon``."""
    if not 0.0 <= value <= 1.0 + 1e-12:
        raise SketchSizeError(f"frequency must lie in [0, 1], got {value}")
    return int(round(min(value, 1.0) / epsilon))


def dequantize_frequency(code: int, epsilon: float) -> float:
    """Inverse of :func:`quantize_frequency` (clamped to ``[0, 1]``)."""
    return min(1.0, code * epsilon)


def _uints_to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """``(len(values) * width,)`` boolean array, MSB first per value.

    One broadcasted shift-and-mask for the whole batch; values must fit in
    ``width`` bits and ``width`` must be 1..64 (wider single values go
    through :func:`int_to_bits`, which is arbitrary precision).
    """
    if not 1 <= width <= 64:
        raise SketchSizeError(f"batched uints need 1 <= width <= 64, got {width}")
    vals = np.asarray(values, dtype=np.uint64)
    if vals.ndim != 1:
        raise SketchSizeError(f"expected a 1-D value array, got shape {vals.shape}")
    if width < 64 and vals.size and int(vals.max()) >> width:
        bad = int(vals.max())
        raise SketchSizeError(f"value {bad} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return ((vals[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool).reshape(-1)


def _bits_to_uints(bits: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`_uints_to_bits`: decode consecutive ``width``-bit fields."""
    if not 1 <= width <= 64:
        raise SketchSizeError(f"batched uints need 1 <= width <= 64, got {width}")
    arr = np.asarray(bits, dtype=bool)
    if arr.size % width:
        raise SketchSizeError(
            f"bit run of {arr.size} does not divide into {width}-bit fields"
        )
    fields = arr.reshape(-1, width).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (fields << shifts[None, :]).sum(axis=1, dtype=np.uint64)


class BitWriter:
    """Append-only bit stream backed by whole numpy chunks.

    Writes append boolean chunks to an internal list; nothing is visited
    per-bit in Python.  :meth:`getvalue` concatenates the chunks once and
    packs them with a single vectorized :func:`numpy.packbits` call
    (big-endian within each byte, zero padded to a byte boundary).
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._n_bits = 0
        self._drained = False

    def write_bit(self, bit: bool | int) -> None:
        """Append a single bit."""
        self._require_not_drained()
        self._chunks.append(np.array([bool(bit)]))
        self._n_bits += 1

    def write_bits(self, bits: np.ndarray) -> None:
        """Append a 1-D boolean array as one chunk.

        The chunk is copied, so callers may reuse or mutate scratch
        buffers after writing without corrupting the payload.
        """
        self._require_not_drained()
        arr = np.array(bits, dtype=bool, copy=True).reshape(-1)
        self._chunks.append(arr)
        self._n_bits += arr.size

    def _require_not_drained(self) -> None:
        if self._drained:
            raise SketchSizeError(
                "BitWriter already drained by iter_packed/flush_to; "
                "its payload left in byte-aligned windows"
            )

    def write_uint(self, value: int, width: int) -> None:
        """Append a ``width``-bit unsigned integer, MSB first."""
        self.write_bits(int_to_bits(value, width))

    def write_uints(self, values: Sequence[int] | np.ndarray, width: int) -> None:
        """Append many ``width``-bit unsigned integers in one vectorized pass."""
        self.write_bits(_uints_to_bits(np.asarray(values), width))

    def write_quantized(self, value: float, epsilon: float) -> None:
        """Append a frequency quantized to precision ``epsilon``."""
        self.write_uint(quantize_frequency(value, epsilon), frequency_bits(epsilon))

    def write_quantized_batch(
        self, values: Sequence[float] | np.ndarray, epsilon: float
    ) -> None:
        """Append many quantized frequencies in one vectorized pass.

        Codes match :func:`quantize_frequency` exactly (round-half-to-even,
        numpy's and Python's shared convention), so batch and per-value
        writes produce identical payloads.
        """
        vals = np.asarray(values, dtype=float)
        if vals.size and (vals.min() < 0.0 or vals.max() > 1.0 + 1e-12):
            bad = vals.min() if vals.min() < 0.0 else vals.max()
            raise SketchSizeError(f"frequency must lie in [0, 1], got {bad}")
        codes = np.rint(np.minimum(vals, 1.0) / epsilon).astype(np.uint64)
        self.write_uints(codes, frequency_bits(epsilon))

    def __len__(self) -> int:
        return self._n_bits

    @property
    def n_bits(self) -> int:
        """Number of bits written so far: the sketch's exact size."""
        return self._n_bits

    def getvalue(self) -> bytes:
        """Packed payload (zero padded to a byte boundary)."""
        self._require_not_drained()
        if not self._n_bits:
            return b""
        if len(self._chunks) > 1:
            # Coalesce so repeated getvalue calls stay cheap.
            self._chunks = [np.concatenate(self._chunks)]
        return np.packbits(self._chunks[0].astype(np.uint8)).tobytes()

    def iter_packed(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Iterator[bytes]:
        """Yield the packed payload as byte windows, draining the buffer.

        Every window except the last is exactly ``chunk_bytes`` long; the
        last carries the tail (zero padded to a byte boundary, like
        :meth:`getvalue`).  Buffered chunks are *consumed* as they are
        packed, so peak memory is one window rather than the full payload
        -- this is what lets wire-format v2 stream RELEASE-DB-sized frames
        through a file object.  After the call the writer is drained:
        further writes or :meth:`getvalue` raise (the emitted windows are
        byte aligned, so appending bits would corrupt the stream).
        ``n_bits`` keeps reporting the total written.
        """
        self._require_not_drained()
        if chunk_bytes < 1:
            raise SketchSizeError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self._drained = True
        pending: deque[np.ndarray] = deque(self._chunks)
        self._chunks = []

        def windows() -> Iterator[bytes]:
            chunk_bits = chunk_bytes * 8
            buffered: list[np.ndarray] = []
            buffered_bits = 0
            while pending:
                arr = pending.popleft()
                buffered.append(arr)
                buffered_bits += arr.size
                if buffered_bits >= chunk_bits:
                    run = np.concatenate(buffered) if len(buffered) > 1 else buffered[0]
                    n_full = (run.size // chunk_bits) * chunk_bits
                    packed = np.packbits(run[:n_full].astype(np.uint8)).tobytes()
                    for start in range(0, len(packed), chunk_bytes):
                        yield packed[start : start + chunk_bytes]
                    buffered = [run[n_full:]] if run.size > n_full else []
                    buffered_bits = run.size - n_full
            if buffered_bits:
                tail = np.concatenate(buffered) if len(buffered) > 1 else buffered[0]
                yield np.packbits(tail.astype(np.uint8)).tobytes()

        return windows()

    def flush_to(self, stream: IO[bytes], chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
        """Drain the packed payload into ``stream`` in bounded windows.

        Returns the number of bytes written (``ceil(n_bits / 8)``).  The
        writer is drained afterwards, exactly as with :meth:`iter_packed`.
        """
        written = 0
        for window in self.iter_packed(chunk_bytes):
            stream.write(window)
            written += len(window)
        return written


class BitReader:
    """Strict sequential reader over a payload produced by :class:`BitWriter`.

    The constructor validates the frame-level invariants the accounting
    rests on:

    * ``len(buf)`` must be exactly ``ceil(n_bits / 8)`` -- a payload that is
      too short cannot hold the declared bits, and one that is too long is
      smuggling uncounted bits past :meth:`size_in_bits` accounting;
    * the zero padding after bit ``n_bits`` in the final byte must actually
      be zero -- nonzero trailing bits mean the payload was corrupted or
      written by a different convention.
    """

    def __init__(self, buf: bytes, n_bits: int) -> None:
        if n_bits < 0:
            raise SketchSizeError(f"n_bits must be non-negative, got {n_bits}")
        need = (n_bits + 7) // 8
        if len(buf) != need:
            raise SketchSizeError(
                f"payload of {len(buf)} bytes disagrees with declared "
                f"{n_bits} bits ({need} bytes expected)"
            )
        raw = np.frombuffer(buf, dtype=np.uint8)
        bits = np.unpackbits(raw) if raw.size else np.zeros(0, dtype=np.uint8)
        if bits[n_bits:].any():
            raise SketchSizeError(
                f"nonzero padding bits after declared bit {n_bits}: "
                "payload corrupt or misdeclared"
            )
        self._bits = bits[:n_bits].astype(bool)
        self._pos = 0

    @classmethod
    def windowed(cls, chunks: Iterable[bytes], n_bits: int) -> "BitReader":
        """A reader over an *iterator of byte chunks* with bounded memory.

        The wire-format v2 decode path: payload windows arrive from a file
        (or a decompressor) one at a time, and only the bits of the
        currently buffered windows are held unpacked.  The same frame
        invariants as the eager constructor are enforced, just lazily:
        the chunks must together hold exactly ``ceil(n_bits / 8)`` bytes
        (a short source raises on read, an oversized one as soon as the
        excess chunk arrives), and the zero padding in the final byte must
        be zero.  Pulling the final window also exhausts the source, so a
        producer that frames its end (checksum trailers, chunk sentinels)
        gets its finalization code run before the last read returns.
        """
        return _WindowedBitReader(chunks, n_bits)

    def _take(self, count: int) -> np.ndarray:
        if count < 0:
            raise SketchSizeError(f"cannot read {count} bits")
        if self._pos + count > len(self._bits):
            raise SketchSizeError(
                f"bit stream exhausted: wanted {count} bits at offset {self._pos} "
                f"of {len(self._bits)}"
            )
        out = self._bits[self._pos : self._pos + count]
        self._pos += count
        return out

    def read_bit(self) -> bool:
        """Read a single bit."""
        return bool(self._take(1)[0])

    def read_bits(self, count: int) -> np.ndarray:
        """Read ``count`` bits as a boolean array."""
        return self._take(count)

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer, MSB first."""
        return bits_to_int(self._take(width))

    def read_uints(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` consecutive ``width``-bit integers in one pass."""
        return _bits_to_uints(self._take(count * width), width)

    def read_quantized(self, epsilon: float) -> float:
        """Read a frequency quantized to precision ``epsilon``."""
        return dequantize_frequency(self.read_uint(frequency_bits(epsilon)), epsilon)

    def read_quantized_batch(self, count: int, epsilon: float) -> np.ndarray:
        """Read ``count`` quantized frequencies as one float vector."""
        codes = self.read_uints(count, frequency_bits(epsilon))
        return np.minimum(1.0, codes.astype(float) * epsilon)

    @property
    def remaining(self) -> int:
        """Bits left unread."""
        return len(self._bits) - self._pos


class _WindowedBitReader(BitReader):
    """Sequential reads over a chunk iterator, one window buffered at a time.

    Constructed via :meth:`BitReader.windowed`.  Shares every ``read_*``
    method with the eager reader through the single :meth:`_take`
    primitive; only buffering differs.
    """

    _SENTINEL = object()

    def __init__(self, chunks: Iterable[bytes], n_bits: int) -> None:
        if n_bits < 0:
            raise SketchSizeError(f"n_bits must be non-negative, got {n_bits}")
        self._total = n_bits
        self._need_bytes = (n_bits + 7) // 8
        self._source: Iterator[bytes] | None = iter(chunks)
        self._pending: deque[np.ndarray] = deque()
        self._buffered = 0
        self._consumed = 0
        self._bytes_seen = 0
        if self._need_bytes == 0:
            self._exhaust_source()

    def _exhaust_source(self) -> None:
        """The declared bytes are all in: the source must end here too."""
        extra = next(self._source, self._SENTINEL)  # type: ignore[arg-type]
        if extra is not self._SENTINEL:
            raise SketchSizeError(
                f"payload continues past the declared {self._total} bits"
            )
        self._source = None

    def _pull(self) -> None:
        if self._source is None:
            raise SketchSizeError(
                f"bit stream exhausted: wanted more bits at offset "
                f"{self._consumed} of {self._total}"
            )
        chunk = next(self._source, self._SENTINEL)
        if chunk is self._SENTINEL:
            raise SketchSizeError(
                f"payload of {self._bytes_seen} bytes disagrees with declared "
                f"{self._total} bits ({self._need_bytes} bytes expected)"
            )
        if not chunk:
            return
        self._bytes_seen += len(chunk)
        if self._bytes_seen > self._need_bytes:
            raise SketchSizeError(
                f"payload of >= {self._bytes_seen} bytes disagrees with "
                f"declared {self._total} bits ({self._need_bytes} bytes expected)"
            )
        bits = np.unpackbits(np.frombuffer(chunk, dtype=np.uint8))
        if self._bytes_seen == self._need_bytes:
            keep = self._total - (self._bytes_seen - len(chunk)) * 8
            if bits[keep:].any():
                raise SketchSizeError(
                    f"nonzero padding bits after declared bit {self._total}: "
                    "payload corrupt or misdeclared"
                )
            bits = bits[:keep]
            self._exhaust_source()
        self._pending.append(bits.astype(bool))
        self._buffered += bits.size

    def _take(self, count: int) -> np.ndarray:
        if count < 0:
            raise SketchSizeError(f"cannot read {count} bits")
        if self._consumed + count > self._total:
            raise SketchSizeError(
                f"bit stream exhausted: wanted {count} bits at offset "
                f"{self._consumed} of {self._total}"
            )
        while self._buffered < count:
            self._pull()
        parts: list[np.ndarray] = []
        need = count
        while need:
            head = self._pending[0]
            if head.size <= need:
                parts.append(self._pending.popleft())
                need -= head.size
            else:
                parts.append(head[:need])
                self._pending[0] = head[need:]
                need = 0
        self._consumed += count
        self._buffered -= count
        if not parts:
            return np.zeros(0, dtype=bool)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    @property
    def buffered_bits(self) -> int:
        """Bits currently held unpacked (the window-memory bound under test)."""
        return self._buffered

    @property
    def remaining(self) -> int:
        """Bits left unread."""
        return self._total - self._consumed
