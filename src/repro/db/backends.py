"""Pluggable shard-executor backends for the packed query kernels.

The sharded evaluators in :mod:`repro.db.packed` split a batch index range
into contiguous shards and run one kernel function ``kernel(arrays, outs,
lo, hi, params)`` per shard, each writing a disjoint slice of a
preallocated output.  This module supplies the *executors* that run those
shards, behind one :class:`ShardBackend` interface:

* :class:`SerialBackend` (``"serial"``) -- one inline call over the full
  range.  Every other backend degenerates to exactly this call when the
  resolved worker count is 1, so results cannot depend on the backend.
* :class:`ThreadBackend` (``"thread"``) -- a shared-memory
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Scales wherever numpy
  releases the GIL (the hot AND / popcount ops); zero setup cost.
* :class:`ProcessBackend` (``"process"``) -- a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` over
  :mod:`multiprocessing.shared_memory`.  Input arrays are published once
  into named shared-memory blocks; workers reattach by ``(shm_name,
  shape, dtype)`` and run the identical kernel writing into a shared
  output block, so **no row data or results are ever pickled** -- only
  descriptor tuples and scalar params cross the process boundary.  This
  is the backend for sweeps large enough that Python-level shard
  orchestration, not numpy, is the bottleneck.

Backend selection
-----------------
:func:`resolve_backend` picks the executor: an explicit ``backend=``
argument (name or instance) wins, then the ``REPRO_EVAL_BACKEND``
environment variable, then an auto heuristic that escalates serial ->
thread -> process by estimated shard word-op volume (process only above
:data:`PROCESS_MIN_WORDS` and only where the ``fork`` start method is
available, so child processes inherit the parent's modules without
re-import).  Forcing ``REPRO_EVAL_BACKEND=process`` routes every sharded
sweep through shared memory -- CI uses this (together with
``REPRO_WORKERS``) to run the kernel differential suites on the process
path.

Backends are orthogonal to **kernel implementation tiers**
(``REPRO_EVAL_KERNEL`` / ``kernel=``, resolved in
:mod:`repro.db.packed`): the backend decides *where* shards run, the
kernel tier decides *what code* each shard executes -- the vectorized
numpy kernels or the cffi-compiled C kernels.  Every backend runs either
tier unchanged, because both are plain module-level functions with the
``ShardKernel`` signature (process workers import them by qualified
name, and the native functions re-resolve the compiled library inside
the worker).  Notably, the C kernels release the GIL for the whole call,
so :class:`ThreadBackend` scales on the native tier even in regions
where numpy would hold the lock.

Lifecycle
---------
Shared-memory blocks are created per ``run`` call and unconditionally
closed and unlinked in a ``finally`` block, worker exceptions included --
a failed sweep leaves nothing in ``/dev/shm``.  Workers attach without
resource-tracker registration (the parent owns the segments; on Python <
3.13 the tracker would otherwise double-count attachments), and drop
their numpy views before closing.  The worker pool itself is lazily
created, reused across calls to amortize startup, grown on demand, and
torn down by :meth:`ProcessBackend.shutdown` or interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import secrets
import sys
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable, Mapping

import numpy as np

from ..errors import ParameterError

__all__ = [
    "ShardJob",
    "ShardBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "shard_edges",
    "BACKEND_ENV",
    "PROCESS_MIN_WORDS",
    "SHM_PREFIX",
]

#: Environment override for the backend choice (name from the registry).
BACKEND_ENV = "REPRO_EVAL_BACKEND"

#: Auto heuristic: escalate thread -> process at this many estimated
#: uint64 word operations.  Below it, shared-memory publication and
#: process dispatch cost more than the GIL-free threads they replace.
PROCESS_MIN_WORDS = 1 << 25

#: Name prefix for every shared-memory block this module creates; tests
#: scan ``/dev/shm`` for it to assert cleanup.
SHM_PREFIX = "repro_shm_"

#: Kernel signature shared by all sharded evaluators: read-only input
#: arrays, preallocated outputs, a contiguous index range, scalar params.
ShardKernel = Callable[
    [Mapping[str, np.ndarray], Mapping[str, np.ndarray], int, int, Mapping], None
]


@dataclass
class ShardJob:
    """One sharded sweep: a kernel plus the arrays it reads and writes.

    ``kernel`` must be a module-level function (the process backend ships
    it by qualified name); ``arrays`` are read-only inputs, ``outs``
    preallocated outputs whose disjoint ``[lo:hi]`` slices the shards
    fill, ``params`` picklable scalars, and ``total`` the index range
    being sharded.
    """

    kernel: ShardKernel
    arrays: dict[str, np.ndarray]
    outs: dict[str, np.ndarray]
    total: int
    params: dict = field(default_factory=dict)

    def run_slice(self, lo: int, hi: int) -> None:
        """Run the kernel over ``[lo, hi)`` in the calling thread."""
        self.kernel(self.arrays, self.outs, lo, hi, self.params)


def shard_edges(total: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` shard bounds covering ``range(total)``."""
    edges = np.linspace(0, total, workers + 1).astype(int)
    return [(int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]


class ShardBackend(ABC):
    """Executor interface for sharded kernel sweeps.

    The contract every backend must keep: shards are contiguous slices of
    one output running the same kernel code on the same data, so results
    are bit-identical to :class:`SerialBackend` for every worker count.
    """

    #: Registry name ("serial", "thread", "process").
    name: str = "abstract"

    @abstractmethod
    def run(self, job: ShardJob, workers: int) -> None:
        """Execute ``job`` over at most ``workers`` shards."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ShardBackend):
    """Inline execution: one kernel call over the full range."""

    name = "serial"

    def run(self, job: ShardJob, workers: int) -> None:
        """Run the whole range in the calling thread (ignores ``workers``)."""
        job.run_slice(0, job.total)


class ThreadBackend(ShardBackend):
    """Shared-memory threads (the PR-2 path): zero-copy, GIL-bound set-up."""

    name = "thread"

    def run(self, job: ShardJob, workers: int) -> None:
        """Shard over a thread pool; ``workers <= 1`` degenerates to serial."""
        workers = min(workers, job.total) if job.total else 1
        if workers <= 1:
            job.run_slice(0, job.total)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(job.run_slice, lo, hi)
                for lo, hi in shard_edges(job.total, workers)
            ]
            for future in futures:
                future.result()


def _attach_untracked(shm_name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    The parent that created the block owns its lifetime; worker-side
    registration would make the tracker double-count the segment (and
    complain, or unlink prematurely, at worker exit).  Python 3.13 has
    ``track=False`` for exactly this; older versions need the register
    call suppressed for the duration of the attach.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - 3.11/3.12 container
        return shared_memory.SharedMemory(name=shm_name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original


#: Descriptor a worker needs to reattach one published array:
#: ``(shm_name, shape, dtype_str)``.
_ArrayDesc = tuple[str, tuple[int, ...], str]


def _shard_entry(
    kernel: ShardKernel,
    array_descs: dict[str, _ArrayDesc],
    out_descs: dict[str, _ArrayDesc],
    params: dict,
    lo: int,
    hi: int,
) -> None:
    """Worker-side shard: reattach by descriptor, run, detach.

    Everything crossing the process boundary is in this signature: the
    kernel (pickled as a module-qualified name), descriptor tuples, and
    scalar params -- never array contents.
    """
    segments: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    outs: dict[str, np.ndarray] = {}
    try:
        for name, (shm_name, shape, dtype) in array_descs.items():
            shm = _attach_untracked(shm_name)
            segments.append(shm)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        for name, (shm_name, shape, dtype) in out_descs.items():
            shm = _attach_untracked(shm_name)
            segments.append(shm)
            outs[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        kernel(arrays, outs, lo, hi, params)
    finally:
        # numpy views pin the mapped buffer; drop them before closing.
        arrays.clear()
        outs.clear()
        for shm in segments:
            shm.close()


class _ShmPublisher:
    """Parent-side shared-memory lifecycle for one sweep.

    Publishes arrays into fresh named blocks and guarantees close+unlink
    on every exit path via :meth:`cleanup` (called from the backend's
    ``finally``), so a failed sweep leaves no segments behind.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: list[np.ndarray] = []

    def publish(self, arr: np.ndarray) -> tuple[_ArrayDesc, np.ndarray]:
        """Copy ``arr`` into a new block; return its descriptor and view."""
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(arr.nbytes, 1),
            name=SHM_PREFIX + secrets.token_hex(8),
        )
        self._segments.append(shm)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        self._views.append(view)
        return (shm.name, arr.shape, arr.dtype.str), view

    def cleanup(self) -> None:
        """Close and unlink every block created by this publisher."""
        self._views.clear()  # views pin the mapped buffers
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


class ProcessBackend(ShardBackend):
    """Process-pool execution over named shared-memory blocks.

    Parameters
    ----------
    context:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.  Spawned
        workers re-import :mod:`repro`, so the package must be importable
        in child processes (``PYTHONPATH`` is inherited).
    max_workers:
        Hard cap on pool size (``None`` = grow to the requested shard
        count, itself capped at ``os.cpu_count()`` by
        :func:`repro.db.packed.resolve_workers`).

    The pool is created lazily on first use and reused across sweeps;
    shared-memory blocks are per-sweep and always unlinked, error paths
    included.
    """

    name = "process"

    def __init__(self, context: str | None = None, max_workers: int | None = None) -> None:
        self._context = context
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._lock = threading.Lock()

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            return self._ensure_pool_locked(workers)

    def _ensure_pool_locked(self, workers: int) -> ProcessPoolExecutor:
        """Pool with capacity for ``workers`` shards; caller holds ``_lock``."""
        if self._max_workers is not None:
            workers = min(workers, self._max_workers)
        if self._pool is not None and self._pool_workers < workers:
            # Growing waits for in-flight sweeps to drain (their shards
            # were submitted under the lock, so none can hit the old pool
            # after this point).
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            ctx = get_context(self._context)
            self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
            self._pool_workers = workers
        return self._pool

    def run(self, job: ShardJob, workers: int) -> None:
        """Publish inputs and outputs once, fan shards out, copy results back.

        ``workers <= 1`` (or an empty range) runs inline -- identical to
        :class:`SerialBackend` -- so forcing the backend never changes
        results, only where multi-shard sweeps execute.
        """
        workers = min(workers, job.total) if job.total else 1
        if workers <= 1:
            job.run_slice(0, job.total)
            return
        publisher = _ShmPublisher()
        try:
            array_descs = {
                name: publisher.publish(arr)[0] for name, arr in job.arrays.items()
            }
            out_views: dict[str, np.ndarray] = {}
            out_descs: dict[str, _ArrayDesc] = {}
            for name, out in job.outs.items():
                # publish() copies the (uninitialized) output buffer too;
                # that memcpy is the price of one code path, and outputs
                # are small relative to sweeps worth sharding.
                desc, view = publisher.publish(out)
                out_descs[name] = desc
                out_views[name] = view
            # Submitting under the lock pins the pool for this sweep: a
            # concurrent run() that needs a bigger pool replaces it only
            # between sweeps, never under one (its shutdown(wait=True)
            # drains these shards first).
            with self._lock:
                pool = self._ensure_pool_locked(workers)
                futures = [
                    pool.submit(
                        _shard_entry,
                        job.kernel,
                        array_descs,
                        out_descs,
                        job.params,
                        lo,
                        hi,
                    )
                    for lo, hi in shard_edges(job.total, workers)
                ]
            try:
                for future in futures:
                    future.result()
            except BrokenProcessPool:
                # A dead worker poisons the whole executor; drop it so the
                # next sweep gets a fresh pool instead of the same error.
                with self._lock:
                    if self._pool is pool:
                        self._pool = None
                        self._pool_workers = 0
                raise
            for name, out in job.outs.items():
                out[...] = out_views[name]
        finally:
            publisher.cleanup()

    def shutdown(self) -> None:
        """Tear the worker pool down (it is re-created on next use)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_workers = 0


_REGISTRY: dict[str, ShardBackend] = {}
_REGISTRY_LOCK = threading.Lock()


@atexit.register
def _shutdown_registered_backends() -> None:
    """Tear down singleton pools at interpreter exit.

    Long-lived hosts -- the sketch server, notebook kernels, a CLI killed
    by SIGTERM mid-sweep -- must not orphan pool workers or shared-memory
    segments.  Per-run cleanup already unlinks segments in a ``finally``,
    so this only has to retire the lazily-created worker pools; it runs
    before ``concurrent.futures``' own atexit hook joins leftover
    processes.
    """
    with _REGISTRY_LOCK:
        backends = list(_REGISTRY.values())
    for backend in backends:
        shutdown = getattr(backend, "shutdown", None)
        if shutdown is not None:
            shutdown()


def available_backends() -> tuple[str, ...]:
    """Names accepted by ``backend=`` and ``REPRO_EVAL_BACKEND``."""
    return ("serial", "thread", "process")


def get_backend(name: str) -> ShardBackend:
    """The shared singleton backend registered under ``name``.

    Raises
    ------
    ParameterError
        If ``name`` is not one of :func:`available_backends`.
    """
    if name not in available_backends():
        raise ParameterError(
            f"unknown shard backend {name!r}; expected one of {available_backends()}"
        )
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
        if backend is None:
            backend = {
                "serial": SerialBackend,
                "thread": ThreadBackend,
                "process": ProcessBackend,
            }[name]()
            _REGISTRY[name] = backend
        return backend


def _fork_available() -> bool:
    return "fork" in get_all_start_methods()


def resolve_backend(
    backend: str | ShardBackend | None, word_ops: int, workers: int
) -> ShardBackend:
    """Pick the executor for a sweep of ``word_ops`` over ``workers`` shards.

    Explicit ``backend`` (instance or registry name) wins, then the
    ``REPRO_EVAL_BACKEND`` environment variable, then the auto heuristic:
    serial for single-worker sweeps, process above
    :data:`PROCESS_MIN_WORDS` word operations (where ``fork`` is
    available), thread in between.
    """
    if isinstance(backend, ShardBackend):
        return backend
    if backend is not None:
        return get_backend(backend)
    env = os.environ.get(BACKEND_ENV)
    if env is not None:
        return get_backend(env)
    if workers <= 1:
        return get_backend("serial")
    if word_ops >= PROCESS_MIN_WORDS and _fork_available():
        return get_backend("process")
    return get_backend("thread")
