"""Batch frequency queries and marginal contingency tables.

Two query surfaces sit on top of :class:`~repro.db.database.BinaryDatabase`:

* :class:`FrequencyOracle` -- evaluates many itemset frequency queries
  efficiently by caching per-column bitmasks (as packed uint64 words) and
  intersecting them, which is the classic "vertical" representation used by
  Eclat-style miners.
* :func:`marginal_table` -- the ``2^k``-entry marginal contingency table of
  Section 1.1.2: one count per setting of the k attributes.  The paper notes
  marginal tables are "essentially just a list of itemset frequencies"; we
  realise both directions of that equivalence
  (:func:`marginal_from_frequencies` via inclusion-exclusion).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from .database import BinaryDatabase
from .itemset import Itemset, all_itemsets

__all__ = [
    "FrequencyOracle",
    "marginal_table",
    "marginal_from_frequencies",
    "frequencies_from_marginal",
    "all_frequencies",
    "frequent_itemsets_exact",
]


class FrequencyOracle:
    """Fast repeated itemset frequency evaluation over a fixed database.

    Columns are packed into uint64 words once; each query intersects the
    packed columns and popcounts the result.  For the query-heavy
    reconstruction attacks of Section 3 this is an order of magnitude faster
    than slicing the boolean matrix per query.
    """

    def __init__(self, db: BinaryDatabase) -> None:
        self._db = db
        n = db.n
        n_words = (n + 63) // 64
        packed = np.zeros((db.d, n_words), dtype=np.uint64)
        padded = np.zeros((db.d, n_words * 64), dtype=bool)
        padded[:, :n] = db.rows.T
        for j in range(db.d):
            words = np.packbits(padded[j]).view(np.uint8)
            packed[j] = np.frombuffer(words.tobytes(), dtype=np.uint64)
        self._packed = packed
        self._full_mask = self._intersection(())

    @property
    def database(self) -> BinaryDatabase:
        """The database this oracle answers for."""
        return self._db

    def _intersection(self, items: Sequence[int]) -> np.ndarray:
        if len(items) == 0:
            n = self._db.n
            n_words = self._packed.shape[1]
            mask = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
            # Zero out the padding bits beyond row n.
            excess = n_words * 64 - n
            if excess:
                pad = np.unpackbits(mask[-1:].view(np.uint8))
                pad[-excess:] = 0
                mask[-1] = np.frombuffer(np.packbits(pad).tobytes(), dtype=np.uint64)[0]
            return mask
        mask = self._packed[items[0]].copy()
        for j in items[1:]:
            mask &= self._packed[j]
        return mask

    def support(self, itemset: Itemset) -> int:
        """Number of rows containing ``itemset``."""
        if itemset.items and itemset.items[-1] >= self._db.d:
            raise ParameterError(
                f"itemset {itemset} out of range for d={self._db.d}"
            )
        mask = self._intersection(itemset.items) & self._full_mask
        return int(np.bitwise_count(mask).sum())

    def frequency(self, itemset: Itemset) -> float:
        """``f_T(D)`` for a single itemset."""
        return self.support(itemset) / self._db.n

    def frequencies(self, itemsets: Iterable[Itemset]) -> np.ndarray:
        """Frequencies for a batch of itemsets."""
        return np.array([self.frequency(t) for t in itemsets], dtype=float)


def all_frequencies(db: BinaryDatabase, k: int) -> dict[Itemset, float]:
    """Exact frequencies of *all* ``C(d, k)`` k-itemsets.

    This is RELEASE-ANSWERS' precomputation step (Definition 7).  The cost is
    ``C(d, k)`` queries, so callers guard ``d`` and ``k``.
    """
    oracle = FrequencyOracle(db)
    return {t: oracle.frequency(t) for t in all_itemsets(db.d, k)}


def frequent_itemsets_exact(
    db: BinaryDatabase, k: int, epsilon: float
) -> list[Itemset]:
    """All k-itemsets with frequency strictly above ``epsilon`` (brute force).

    Serves as ground truth for the indicator sketches and the miners.
    """
    oracle = FrequencyOracle(db)
    return [t for t in all_itemsets(db.d, k) if oracle.frequency(t) > epsilon]


def marginal_table(db: BinaryDatabase, itemset: Itemset) -> np.ndarray:
    """The ``2^k`` marginal contingency table for the attributes in ``itemset``.

    Entry ``b`` (read as a k-bit number, most significant bit = first
    attribute of the sorted itemset) counts rows whose restriction to the
    itemset's attributes equals the bit pattern of ``b``.
    """
    k = len(itemset)
    if k == 0:
        return np.array([db.n], dtype=np.int64)
    cols = db.rows[:, list(itemset.items)]
    weights = 1 << np.arange(k - 1, -1, -1)
    cell = cols @ weights
    return np.bincount(cell, minlength=1 << k).astype(np.int64)


def marginal_from_frequencies(
    itemset: Itemset, freq_of: dict[Itemset, float], n: int
) -> np.ndarray:
    """Reconstruct a marginal table from monotone-conjunction frequencies.

    Implements the textbook inclusion-exclusion (Moebius) inversion noted in
    the paper's footnote 2: non-monotone conjunction counts are signed sums
    of monotone ones.  ``freq_of`` must contain the frequency of every
    subset of ``itemset`` (including the empty itemset, frequency 1).
    """
    attrs = list(itemset.items)
    k = len(attrs)
    table = np.zeros(1 << k, dtype=float)
    for pattern in range(1 << k):
        ones = [attrs[i] for i in range(k) if (pattern >> (k - 1 - i)) & 1]
        zeros = [attrs[i] for i in range(k) if not (pattern >> (k - 1 - i)) & 1]
        total = 0.0
        for r in range(len(zeros) + 1):
            for extra in combinations(zeros, r):
                key = Itemset(tuple(ones) + extra)
                total += (-1) ** r * freq_of[key]
        table[pattern] = total * n
    return table


def frequencies_from_marginal(
    itemset: Itemset, table: np.ndarray, n: int
) -> dict[Itemset, float]:
    """Frequencies of all subsets of ``itemset`` from its marginal table.

    The inverse direction of the equivalence: the frequency of a sub-itemset
    is the sum of table cells whose pattern has 1s on that subset.
    """
    attrs = list(itemset.items)
    k = len(attrs)
    if len(table) != 1 << k:
        raise ParameterError(
            f"marginal table for {k} attributes needs {1 << k} entries, "
            f"got {len(table)}"
        )
    out: dict[Itemset, float] = {}
    for r in range(k + 1):
        for sub in combinations(range(k), r):
            mask_positions = set(sub)
            total = 0.0
            for pattern in range(1 << k):
                if all((pattern >> (k - 1 - i)) & 1 for i in mask_positions):
                    total += table[pattern]
            out[Itemset(attrs[i] for i in sub)] = total / n
    return out
