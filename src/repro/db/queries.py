"""Batch frequency queries and marginal contingency tables.

Two query surfaces sit on top of :class:`~repro.db.database.BinaryDatabase`:

* :class:`FrequencyOracle` -- evaluates many itemset frequency queries
  through the packed-bitset kernel of :mod:`repro.db.packed`: one uint64
  AND-reduce plus popcount per query, batched over whole query sets, with a
  prefix-sharing DFS for full ``C(d, k)`` enumerations (RELEASE-ANSWERS'
  precomputation, the miners' ground truth).
* :func:`marginal_table` -- the ``2^k``-entry marginal contingency table of
  Section 1.1.2: one count per setting of the k attributes.  The paper notes
  marginal tables are "essentially just a list of itemset frequencies"; we
  realise both directions of that equivalence via vectorized zeta/Moebius
  (subset-sum) transforms over the ``2^k`` table.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from .database import BinaryDatabase
from .itemset import Itemset, lex_itemsets
from .packed import PackedColumns
from .backends import ShardBackend

__all__ = [
    "FrequencyOracle",
    "marginal_table",
    "marginal_from_frequencies",
    "frequencies_from_marginal",
    "all_frequencies",
    "frequent_itemsets_exact",
]


class FrequencyOracle:
    """Fast repeated itemset frequency evaluation over a fixed database.

    Columns are packed into uint64 words once (one vectorized
    :func:`numpy.packbits` pass); each query intersects the packed columns
    and popcounts the result.  Batches go through
    :meth:`supports_batch` -- a single vectorized kernel call for the whole
    query set -- and full ``C(d, k)`` sweeps share ``(k-1)``-prefix
    intersections Eclat-style instead of intersecting from scratch per query.
    """

    def __init__(self, db: BinaryDatabase) -> None:
        self._db = db
        self._kernel = db.packed

    @property
    def database(self) -> BinaryDatabase:
        """The database this oracle answers for."""
        return self._db

    @property
    def kernel(self) -> PackedColumns:
        """The shared packed-bitset kernel (for miners and sketchers)."""
        return self._kernel

    def _check(self, itemset: Itemset) -> Itemset:
        if itemset.items and itemset.items[-1] >= self._db.d:
            raise ParameterError(
                f"itemset {itemset} out of range for d={self._db.d}"
            )
        return itemset

    def support(self, itemset: Itemset) -> int:
        """Number of rows containing ``itemset``."""
        return self._kernel.support(self._check(itemset).items)

    def frequency(self, itemset: Itemset) -> float:
        """``f_T(D)`` for a single itemset."""
        return self.support(itemset) / self._db.n

    def supports_batch(
        self,
        itemsets: Iterable[Itemset | Sequence[int]],
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Support counts for a batch of itemsets in one vectorized sweep.

        ``workers`` shards the sweep, ``backend`` selects the shard
        executor -- serial, thread, or shared-memory process pool -- and
        ``kernel`` the implementation tier (numpy or cffi-compiled
        native).  ``None`` everywhere applies the auto heuristics;
        results are identical for every worker count, executor, and tier.
        """
        batch = [
            t.items if isinstance(t, Itemset) else tuple(t) for t in itemsets
        ]
        return self._kernel.supports_batch(
            batch, workers=workers, backend=backend, kernel=kernel
        )

    def frequencies(
        self,
        itemsets: Iterable[Itemset],
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Frequencies for a batch of itemsets (single kernel call)."""
        return (
            self.supports_batch(
                itemsets, workers=workers, backend=backend, kernel=kernel
            )
            / self._db.n
        )

    def all_supports(
        self,
        k: int,
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """Supports of all ``C(d, k)`` k-itemsets, indexed by colex rank.

        ``result[rank_itemset(T)]`` is the support of ``T``; computed with
        shared prefix intersections (one word-AND + popcount per itemset),
        optionally sharded via ``workers``/``backend``/``kernel``.
        """
        return self._kernel.support_counts_all(
            k, workers=workers, backend=backend, kernel=kernel
        )

    def iter_supports(
        self, k: int, min_count: int = 0
    ) -> Iterable[tuple[tuple[int, ...], int]]:
        """Yield ``(items, support)`` over k-itemsets (lex order, pruned DFS)."""
        return self._kernel.iter_supports(k, min_count=min_count)


def all_frequencies(
    db: BinaryDatabase,
    k: int,
    workers: int | None = None,
    backend: str | ShardBackend | None = None,
    kernel: str | None = None,
) -> dict[Itemset, float]:
    """Exact frequencies of *all* ``C(d, k)`` k-itemsets.

    This is RELEASE-ANSWERS' precomputation step (Definition 7), evaluated
    as one flat batched kernel sweep (a handful of vectorized AND + popcount
    calls for the whole ``C(d, k)`` space) zipped against the cached
    lexicographic itemset enumeration.  ``workers`` shards the sweep,
    ``backend`` picks its executor (``None`` = auto; serial below the size
    threshold, escalating to the process pool for the largest sweeps), and
    ``kernel`` the implementation tier (``None`` = auto: native C when the
    compiled module is available, numpy otherwise).
    """
    _, counts = db.packed.combination_supports(
        k, workers=workers, backend=backend, kernel=kernel
    )
    freqs = counts / db.n
    return dict(zip(lex_itemsets(db.d, k), freqs.tolist()))


def frequent_itemsets_exact(
    db: BinaryDatabase, k: int, epsilon: float
) -> list[Itemset]:
    """All k-itemsets with frequency strictly above ``epsilon``.

    Serves as ground truth for the indicator sketches and the miners.  The
    DFS prunes by monotonicity: a prefix at or below the threshold cannot
    have a qualifying extension.  Results are in lexicographic order.
    """
    oracle = FrequencyOracle(db)
    # Smallest integer count with count / n > epsilon.
    min_count = int(np.floor(epsilon * db.n + 1e-9)) + 1
    return [
        Itemset.from_sorted(items)
        for items, _ in oracle.iter_supports(k, min_count=min_count)
    ]


def marginal_table(db: BinaryDatabase, itemset: Itemset) -> np.ndarray:
    """The ``2^k`` marginal contingency table for the attributes in ``itemset``.

    Entry ``b`` (read as a k-bit number, most significant bit = first
    attribute of the sorted itemset) counts rows whose restriction to the
    itemset's attributes equals the bit pattern of ``b``.
    """
    k = len(itemset)
    if k == 0:
        return np.array([db.n], dtype=np.int64)
    cols = db.rows[:, list(itemset.items)]
    weights = 1 << np.arange(k - 1, -1, -1)
    cell = cols @ weights
    return np.bincount(cell, minlength=1 << k).astype(np.int64)


def _pattern_attrs(attrs: Sequence[int], pattern: int, k: int) -> Itemset:
    """The sub-itemset whose attributes sit on ``pattern``'s set bits."""
    return Itemset(attrs[i] for i in range(k) if (pattern >> (k - 1 - i)) & 1)


def _superset_zeta(table: np.ndarray, k: int) -> np.ndarray:
    """Superset-sum (zeta) transform: ``out[S] = sum_{P >= S} table[P]``.

    ``P >= S`` means ``P``'s bit pattern covers ``S``'s.  Vectorized over the
    ``2^k`` table: one in-place axis-fold per attribute instead of the naive
    ``O(4^k)`` double loop.
    """
    t = table.astype(float).reshape((2,) * k)
    for axis in range(k):
        lo = tuple(slice(None) if a != axis else 0 for a in range(k))
        hi = tuple(slice(None) if a != axis else 1 for a in range(k))
        t[lo] += t[hi]
    return t.reshape(-1)


def _superset_moebius(values: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`_superset_zeta` (signed subset-sum / Moebius)."""
    t = values.astype(float).reshape((2,) * k)
    for axis in range(k):
        lo = tuple(slice(None) if a != axis else 0 for a in range(k))
        hi = tuple(slice(None) if a != axis else 1 for a in range(k))
        t[lo] -= t[hi]
    return t.reshape(-1)


def marginal_from_frequencies(
    itemset: Itemset, freq_of: dict[Itemset, float], n: int
) -> np.ndarray:
    """Reconstruct a marginal table from monotone-conjunction frequencies.

    Implements the inclusion-exclusion (Moebius) inversion noted in the
    paper's footnote 2 -- non-monotone conjunction counts are signed sums of
    monotone ones -- as one vectorized superset-Moebius transform over the
    ``2^k`` table.  ``freq_of`` must contain the frequency of every subset
    of ``itemset`` (including the empty itemset, frequency 1).
    """
    attrs = list(itemset.items)
    k = len(attrs)
    if k == 0:
        return np.array([freq_of[Itemset([])] * n], dtype=float)
    counts = np.empty(1 << k, dtype=float)
    for pattern in range(1 << k):
        counts[pattern] = freq_of[_pattern_attrs(attrs, pattern, k)] * n
    return _superset_moebius(counts, k)


def frequencies_from_marginal(
    itemset: Itemset, table: np.ndarray, n: int
) -> dict[Itemset, float]:
    """Frequencies of all subsets of ``itemset`` from its marginal table.

    The inverse direction of the equivalence -- the frequency of a
    sub-itemset is the sum of table cells whose pattern has 1s on that
    subset -- computed as one vectorized superset-zeta transform.
    """
    attrs = list(itemset.items)
    k = len(attrs)
    if len(table) != 1 << k:
        raise ParameterError(
            f"marginal table for {k} attributes needs {1 << k} entries, "
            f"got {len(table)}"
        )
    if k == 0:
        return {Itemset([]): float(table[0]) / n}
    sums = _superset_zeta(np.asarray(table, dtype=float), k)
    return {
        _pattern_attrs(attrs, pattern, k): sums[pattern] / n
        for pattern in range(1 << k)
    }
