"""Itemsets and combinadic (un)ranking.

An *itemset* ``T`` over ``d`` attributes is a subset of ``{0, ..., d-1}``
(the paper uses 1-based ``[d]``; we use 0-based indices throughout the code
and keep the paper's conventions in docstrings).  The paper also uses ``T``
for the indicator vector in ``{0,1}^d``; :meth:`Itemset.indicator` provides
that view.

The lower-bound constructions of Theorems 13-16 need to enumerate and invert
"the i-th (k-1)-subset of the first d/2 attributes".  We implement exact
combinadic ranking/unranking (the combinatorial number system) so that those
encoders are bijections with testable inverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations
from math import comb
from typing import Iterable, Iterator

import numpy as np

from ..errors import ParameterError

__all__ = [
    "Itemset",
    "rank_itemset",
    "unrank_itemset",
    "all_itemsets",
    "lex_itemsets",
]


@dataclass(frozen=True)
class Itemset:
    """An immutable itemset: a sorted tuple of attribute indices.

    Parameters
    ----------
    items:
        Iterable of distinct attribute indices (0-based).

    Notes
    -----
    ``Itemset`` is hashable and ordered lexicographically, so it can key
    dictionaries (RELEASE-ANSWERS stores one answer per itemset) and be
    sorted deterministically in reports.
    """

    items: tuple[int, ...]

    def __init__(self, items: Iterable[int]) -> None:
        values = tuple(sorted(set(int(i) for i in items)))
        if any(i < 0 for i in values):
            raise ParameterError(f"itemset indices must be non-negative: {values}")
        object.__setattr__(self, "items", values)

    @staticmethod
    def from_sorted(items: tuple[int, ...]) -> "Itemset":
        """Trusted fast constructor for the batch evaluators.

        ``items`` must already be a strictly increasing tuple of
        non-negative ints (e.g. straight out of
        :func:`itertools.combinations`); no validation or normalisation is
        performed.  The packed-kernel enumeration paths construct millions
        of itemsets, where ``__init__``'s sort/dedup would dominate.
        """
        obj = object.__new__(Itemset)
        object.__setattr__(obj, "items", items)
        return obj

    # -- basic protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[int]:
        return iter(self.items)

    def __contains__(self, item: int) -> bool:
        return item in self.items

    def __lt__(self, other: "Itemset") -> bool:
        return self.items < other.items

    def __repr__(self) -> str:
        return f"Itemset({list(self.items)})"

    # -- set algebra -----------------------------------------------------
    def union(self, other: "Itemset | Iterable[int]") -> "Itemset":
        """Union with another itemset (used to build ``T_s ∪ {j}`` queries)."""
        other_items = other.items if isinstance(other, Itemset) else tuple(other)
        return Itemset(self.items + tuple(other_items))

    def shift(self, offset: int) -> "Itemset":
        """Translate every index by ``offset``.

        The amplification constructions append blocks of columns and need
        "T shifted to operate on the final d attributes" (Section 3.2.2).
        """
        return Itemset(i + offset for i in self.items)

    def issubset(self, other: "Itemset") -> bool:
        """Whether every index of ``self`` appears in ``other``."""
        return set(self.items) <= set(other.items)

    # -- vector views ------------------------------------------------------
    def indicator(self, d: int) -> np.ndarray:
        """Indicator vector in ``{0,1}^d`` (paper Section 1.3).

        Raises
        ------
        ParameterError
            If any index is ``>= d``.
        """
        if self.items and self.items[-1] >= d:
            raise ParameterError(
                f"itemset {self.items} does not fit in d={d} attributes"
            )
        vec = np.zeros(d, dtype=bool)
        vec[list(self.items)] = True
        return vec

    @staticmethod
    def from_indicator(vector: np.ndarray) -> "Itemset":
        """Build an itemset from an indicator vector."""
        return Itemset(np.flatnonzero(np.asarray(vector, dtype=bool)).tolist())

    def contained_in_row(self, row: np.ndarray) -> bool:
        """Whether a database row (boolean vector) contains this itemset."""
        row = np.asarray(row, dtype=bool)
        return bool(all(row[i] for i in self.items))


def rank_itemset(itemset: Itemset | Iterable[int]) -> int:
    """Combinadic rank of a k-itemset among all k-subsets in colex order.

    The rank of ``{c_1 < c_2 < ... < c_k}`` is ``sum_i C(c_i, i)``.  This is
    the standard combinatorial number system: ranks run over
    ``0 .. C(d,k)-1`` when indices run over ``0 .. d-1``.
    """
    items = sorted(itemset.items if isinstance(itemset, Itemset) else itemset)
    return sum(comb(c, i + 1) for i, c in enumerate(items))


def unrank_itemset(rank: int, k: int) -> Itemset:
    """Inverse of :func:`rank_itemset`: the k-subset with the given colex rank.

    Raises
    ------
    ParameterError
        If ``rank`` is negative or ``k`` is not positive.
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    if rank < 0:
        raise ParameterError(f"rank must be non-negative, got {rank}")
    items: list[int] = []
    remaining = rank
    for i in range(k, 0, -1):
        # Find the largest c with C(c, i) <= remaining.
        c = i - 1
        while comb(c + 1, i) <= remaining:
            c += 1
        items.append(c)
        remaining -= comb(c, i)
    return Itemset(reversed(items))


def all_itemsets(d: int, k: int) -> Iterator[Itemset]:
    """Yield every k-itemset over ``d`` attributes in colex (rank) order.

    There are ``C(d, k)`` of them; RELEASE-ANSWERS enumerates this space.
    """
    if not 0 <= k <= d:
        raise ParameterError(f"need 0 <= k <= d, got k={k}, d={d}")
    for rank in range(comb(d, k)):
        yield unrank_itemset(rank, k)


#: Cache lex enumerations only below this count (2M itemsets would pin
#: hundreds of MB; large sweeps rebuild instead).
_LEX_CACHE_MAX = 200_000


@lru_cache(maxsize=16)
def _lex_itemsets_cached(d: int, k: int) -> tuple[Itemset, ...]:
    return tuple(
        Itemset.from_sorted(items) for items in combinations(range(d), k)
    )


def lex_itemsets(d: int, k: int) -> tuple[Itemset, ...]:
    """Every k-itemset over ``d`` attributes in lexicographic order.

    The batch query engine's enumeration order (matching
    :meth:`~repro.db.packed.PackedColumns.combination_supports`).  Results
    for small ``C(d, k)`` are cached: repeated full-enumeration workloads --
    RELEASE-ANSWERS over many sketch draws, validation sweeps -- reuse one
    immutable key tuple instead of re-constructing ``C(d, k)`` itemsets.
    """
    if not 0 <= k <= d:
        raise ParameterError(f"need 0 <= k <= d, got k={k}, d={d}")
    if comb(d, k) > _LEX_CACHE_MAX:
        return tuple(
            Itemset.from_sorted(items) for items in combinations(range(d), k)
        )
    return _lex_itemsets_cached(d, k)
