"""The binary database ``D ∈ ({0,1}^d)^n`` of Section 1.3.

:class:`BinaryDatabase` is the substrate every other subsystem builds on: it
owns the boolean matrix, answers itemset frequency queries, and knows its own
exact bit size (``n * d``) for the RELEASE-DB accounting of Definition 6.

Databases are immutable: constructors copy their input and mark the array
read-only.  Derived databases (row samples, column slices, concatenations)
return new instances.  This mirrors the paper's model where the sketching
algorithm reads ``D`` once and the recovery algorithm never sees it again.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ParameterError
from .bitmatrix import pack_matrix, unpack_matrix
from .itemset import Itemset
from .packed import PackedColumns, PackedRows

__all__ = ["BinaryDatabase"]


class BinaryDatabase:
    """An immutable ``n x d`` binary database.

    Parameters
    ----------
    rows:
        Anything convertible to a 2-D boolean numpy array of shape
        ``(n, d)``; the data is copied.

    Examples
    --------
    >>> db = BinaryDatabase([[1, 0, 1], [1, 1, 1]])
    >>> db.frequency(Itemset([0, 2]))
    1.0
    >>> db.frequency(Itemset([1]))
    0.5
    """

    __slots__ = ("_rows", "_packed", "_packed_rows")

    def __init__(self, rows: np.ndarray | Sequence[Sequence[int]]) -> None:
        arr = np.array(rows, dtype=bool, copy=True)
        if arr.ndim != 2:
            raise ParameterError(
                f"database must be a 2-D matrix, got shape {arr.shape}"
            )
        if arr.shape[0] < 1 or arr.shape[1] < 1:
            raise ParameterError(f"database must be non-empty, got shape {arr.shape}")
        arr.setflags(write=False)
        self._rows = arr
        self._packed: PackedColumns | None = None
        self._packed_rows: PackedRows | None = None

    # ------------------------------------------------------------------
    # Shape and equality.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows."""
        return self._rows.shape[0]

    @property
    def d(self) -> int:
        """Number of attributes (columns)."""
        return self._rows.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n, d)``."""
        return self._rows.shape  # type: ignore[return-value]

    @property
    def rows(self) -> np.ndarray:
        """The underlying read-only boolean matrix."""
        return self._rows

    @property
    def packed(self) -> PackedColumns:
        """The shared packed-bitset query kernel for this database.

        Built lazily on first use and cached for the database's lifetime
        (rows are immutable), so every consumer -- the oracle, the miners,
        the sketchers' precomputations -- shares one packing instead of
        re-packing per evaluator.
        """
        if self._packed is None:
            self._packed = PackedColumns(self._rows)
        return self._packed

    @property
    def packed_rows(self) -> PackedRows:
        """The shared row-major packed kernel for this database.

        The membership-side twin of :attr:`packed`: answers *which rows*
        contain an itemset (boolean containment masks, mask matrices) and
        feeds streaming row ingestion.  Built lazily and cached, like
        :attr:`packed`.
        """
        if self._packed_rows is None:
            self._packed_rows = PackedRows(self._rows)
        return self._packed_rows

    def row(self, i: int) -> np.ndarray:
        """The i-th row ``D(i)`` as a boolean vector."""
        return self._rows[i]

    def column(self, j: int) -> np.ndarray:
        """The j-th column as a boolean vector."""
        return self._rows[:, j]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryDatabase):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._rows, other._rows))

    def __hash__(self) -> int:
        return hash((self.shape, pack_matrix(self._rows)))

    def __repr__(self) -> str:
        return f"BinaryDatabase(n={self.n}, d={self.d})"

    # ------------------------------------------------------------------
    # Frequency queries (Section 1.3).
    # ------------------------------------------------------------------
    def support_mask(self, itemset: Itemset) -> np.ndarray:
        """Boolean mask of rows containing ``itemset``.

        Evaluated on the row-major kernel (:attr:`packed_rows`): one packed
        AND + popcount-equality pass.  Repeated items, should a caller
        bypass :class:`Itemset` normalisation, count once; out-of-range
        items raise :class:`~repro.errors.ParameterError` from the kernel.
        """
        return self.packed_rows.contains(itemset.items)

    def contains_matrix(self, itemsets: Iterable[Itemset]) -> np.ndarray:
        """``(m, n)`` boolean containment matrix for several itemsets.

        Row ``i`` is :meth:`support_mask` of the i-th itemset, evaluated as
        one batched row-major kernel sweep.
        """
        return self.packed_rows.contains_batch([t.items for t in itemsets])

    def support(self, itemset: Itemset) -> int:
        """Number of rows containing ``itemset``.

        Counts go through the column-major kernel (:attr:`packed`): a
        k-itemset touches ``k`` packed columns instead of every row.
        Out-of-range items raise :class:`~repro.errors.ParameterError`
        from the kernel.
        """
        return self.packed.support(itemset.items)

    def frequency(self, itemset: Itemset) -> float:
        """``f_T(D)``: the fraction of rows containing ``itemset``."""
        return self.support(itemset) / self.n

    def frequencies(
        self,
        itemsets: Iterable[Itemset],
        workers: int | None = None,
        backend=None,
    ) -> np.ndarray:
        """Vector of frequencies for several itemsets (one batched kernel call).

        ``workers`` shards the sweep and ``backend`` selects the shard
        executor (``None`` = auto heuristics; results are bit-identical
        for every worker count and executor).
        """
        return (
            self.packed.supports_batch(
                [t.items for t in itemsets], workers=workers, backend=backend
            )
            / self.n
        )

    # ------------------------------------------------------------------
    # Derived databases.
    # ------------------------------------------------------------------
    def sample_rows(self, indices: Sequence[int] | np.ndarray) -> "BinaryDatabase":
        """Database consisting of the selected rows (with multiplicity).

        SUBSAMPLE draws indices with replacement; duplicated indices produce
        duplicated rows, exactly as in Definition 8.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            raise ParameterError("cannot build a database from zero rows")
        sampled = BinaryDatabase(self._rows[idx])
        if self._packed_rows is not None:
            # Share the row-major kernel in the packed domain: gathering
            # uint64 words avoids re-packing the sampled rows.
            sampled._packed_rows = self._packed_rows.take(idx)
        return sampled

    def select_columns(self, columns: Sequence[int] | np.ndarray) -> "BinaryDatabase":
        """Database restricted to the given columns (order preserved)."""
        cols = np.asarray(columns, dtype=np.intp)
        if cols.size == 0:
            raise ParameterError("cannot build a database with zero columns")
        return BinaryDatabase(self._rows[:, cols])

    def hstack(self, other: "BinaryDatabase") -> "BinaryDatabase":
        """Column-wise concatenation (append attributes).

        Requires equal row counts.  Used by the amplification constructions,
        which append indicator-tag columns to each sub-database.
        """
        if self.n != other.n:
            raise ParameterError(
                f"hstack requires equal n, got {self.n} and {other.n}"
            )
        return BinaryDatabase(np.hstack([self._rows, other._rows]))

    def vstack(self, other: "BinaryDatabase") -> "BinaryDatabase":
        """Row-wise concatenation (append rows).

        Requires equal column counts.  Used to concatenate the ``D'_i``
        blocks into the "larger" database of Theorems 15 and 16.
        """
        if self.d != other.d:
            raise ParameterError(
                f"vstack requires equal d, got {self.d} and {other.d}"
            )
        return BinaryDatabase(np.vstack([self._rows, other._rows]))

    def repeat_rows(self, times: int) -> "BinaryDatabase":
        """Duplicate every row ``times`` times (Theorem 13's row duplication)."""
        if times < 1:
            raise ParameterError(f"times must be >= 1, got {times}")
        return BinaryDatabase(np.repeat(self._rows, times, axis=0))

    @staticmethod
    def concat_rows(databases: Sequence["BinaryDatabase"]) -> "BinaryDatabase":
        """Row-wise concatenation of several databases with equal ``d``."""
        if not databases:
            raise ParameterError("concat_rows requires at least one database")
        d = databases[0].d
        for db in databases:
            if db.d != d:
                raise ParameterError("concat_rows requires equal column counts")
        return BinaryDatabase(np.vstack([db.rows for db in databases]))

    # ------------------------------------------------------------------
    # Bit-exact serialization (RELEASE-DB's payload).
    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Exact size ``n * d`` in bits (Definition 6's accounting)."""
        return self.n * self.d

    def to_bytes(self) -> bytes:
        """Canonical packed representation (row-major, zero padded)."""
        return pack_matrix(self._rows)

    @staticmethod
    def from_bytes(buf: bytes, n: int, d: int) -> "BinaryDatabase":
        """Inverse of :meth:`to_bytes` given the public shape ``(n, d)``."""
        return BinaryDatabase(unpack_matrix(buf, n, d))

    @staticmethod
    def from_packed_rows(packed: PackedRows) -> "BinaryDatabase":
        """Database adopting an existing row-major kernel (no re-pack).

        The boolean matrix is unpacked from the kernel's words, and the
        kernel itself is installed as the database's cached
        :attr:`packed_rows` -- the streaming ingestion path, which
        accumulates rows in packed form, lands here.
        """
        db = BinaryDatabase(packed.to_matrix())
        db._packed_rows = packed
        return db
