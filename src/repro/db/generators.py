"""Database and workload generators.

The experiments need three kinds of inputs:

* *random* databases (i.i.d. Bernoulli entries) -- the null model and the
  raw material of the KRSU/De constructions;
* *planted* databases, where chosen itemsets are forced to prescribed
  frequencies -- ground truth for miners and indicator sketches;
* *market-basket* style transaction data (an IBM-Quest-like generator) --
  the motivating workload of Section 1 (shopping carts, event logs).

All generators take a :class:`numpy.random.Generator` so experiments are
reproducible; helpers accept an integer seed for convenience.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ParameterError
from .database import BinaryDatabase
from .itemset import Itemset

__all__ = [
    "as_rng",
    "random_database",
    "planted_database",
    "market_basket_database",
    "zipf_item_stream",
    "zipf_weights",
    "random_itemset",
    "correlated_database",
]


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed-or-generator argument into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_database(
    n: int, d: int, density: float = 0.5, rng: np.random.Generator | int | None = None
) -> BinaryDatabase:
    """An ``n x d`` database with i.i.d. Bernoulli(``density``) entries."""
    if not 0.0 <= density <= 1.0:
        raise ParameterError(f"density must lie in [0, 1], got {density}")
    gen = as_rng(rng)
    return BinaryDatabase(gen.random((n, d)) < density)


def random_itemset(
    d: int, k: int, rng: np.random.Generator | int | None = None
) -> Itemset:
    """A uniformly random k-itemset over ``d`` attributes."""
    if not 1 <= k <= d:
        raise ParameterError(f"need 1 <= k <= d, got k={k}, d={d}")
    gen = as_rng(rng)
    return Itemset(gen.choice(d, size=k, replace=False).tolist())


def planted_database(
    n: int,
    d: int,
    plants: Sequence[tuple[Itemset, float]],
    background: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> BinaryDatabase:
    """Database with itemsets planted at (at least) prescribed frequencies.

    Every row starts as i.i.d. Bernoulli(``background``); then, for each
    ``(itemset, freq)`` pair, an independent ``freq`` fraction of rows gets
    the itemset's attributes forced to 1.  The realised frequency of each
    planted itemset is therefore at least ``freq`` (background hits can push
    it higher); tests use low backgrounds when exact control matters.
    """
    gen = as_rng(rng)
    rows = (gen.random((n, d)) < background).astype(bool)
    for itemset, freq in plants:
        if not 0.0 <= freq <= 1.0:
            raise ParameterError(f"planted frequency must lie in [0,1], got {freq}")
        if itemset.items and itemset.items[-1] >= d:
            raise ParameterError(f"planted itemset {itemset} out of range for d={d}")
        count = int(round(freq * n))
        chosen = gen.choice(n, size=count, replace=False)
        for j in itemset:
            rows[chosen, j] = True
    return BinaryDatabase(rows)


def market_basket_database(
    n: int,
    d: int,
    n_patterns: int = 10,
    mean_pattern_size: float = 4.0,
    mean_patterns_per_row: float = 2.0,
    noise: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> BinaryDatabase:
    """An IBM-Quest-flavoured synthetic transaction generator.

    A pool of ``n_patterns`` "purchase patterns" (itemsets with
    Poisson-distributed sizes and Zipf-weighted popularity) is drawn once;
    each transaction then unions a Poisson number of patterns sampled by
    popularity, plus Bernoulli(``noise``) impulse purchases.  This mimics
    the co-occurrence structure that market-basket analysis mines for
    (Section 1's motivating workloads).
    """
    if n_patterns < 1:
        raise ParameterError(f"n_patterns must be >= 1, got {n_patterns}")
    gen = as_rng(rng)
    patterns: list[np.ndarray] = []
    for _ in range(n_patterns):
        size = max(1, min(d, int(gen.poisson(mean_pattern_size))))
        patterns.append(gen.choice(d, size=size, replace=False))
    weights = 1.0 / np.arange(1, n_patterns + 1)
    weights /= weights.sum()
    rows = np.zeros((n, d), dtype=bool)
    for i in range(n):
        count = int(gen.poisson(mean_patterns_per_row))
        for idx in gen.choice(n_patterns, size=count, p=weights):
            rows[i, patterns[idx]] = True
        rows[i] |= gen.random(d) < noise
    return BinaryDatabase(rows)


def correlated_database(
    n: int,
    d: int,
    block_size: int,
    within_block_corr: float = 0.9,
    rng: np.random.Generator | int | None = None,
) -> BinaryDatabase:
    """Database whose attributes are correlated in blocks.

    Attributes are grouped into consecutive blocks of ``block_size``; each
    row draws one latent bit per block and copies it into each attribute of
    the block with probability ``within_block_corr`` (independent noise
    otherwise).  Used to exercise sketches on structured, non-worst-case
    data (the Conclusion's "real-world databases are more structured").
    """
    if block_size < 1:
        raise ParameterError(f"block_size must be >= 1, got {block_size}")
    gen = as_rng(rng)
    n_blocks = (d + block_size - 1) // block_size
    latent = gen.random((n, n_blocks)) < 0.5
    rows = np.zeros((n, d), dtype=bool)
    for j in range(d):
        b = j // block_size
        copy_mask = gen.random(n) < within_block_corr
        noise_bits = gen.random(n) < 0.5
        rows[:, j] = np.where(copy_mask, latent[:, b], noise_bits)
    return BinaryDatabase(rows)


def zipf_weights(d: int, exponent: float = 1.2) -> np.ndarray:
    """The normalized Zipf(``exponent``) popularity vector over ``d`` items.

    Item ``i`` (0-based) gets probability proportional to
    ``1 / (i + 1)**exponent``.  Shared by :func:`zipf_item_stream` and the
    traffic schedules in :mod:`repro.streaming.traffic`, which reweight or
    remap this same vector per phase.
    """
    if d < 1:
        raise ParameterError(f"d must be >= 1, got {d}")
    if exponent <= 0:
        raise ParameterError(f"exponent must be positive, got {exponent}")
    weights = 1.0 / np.power(np.arange(1, d + 1, dtype=float), exponent)
    weights /= weights.sum()
    return weights


def zipf_item_stream(
    length: int,
    d: int,
    exponent: float = 1.2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A stream of single items with Zipf(``exponent``) popularity.

    The streaming baselines of Section 1.2 (heavy hitters) are evaluated on
    skewed streams; this returns an integer array of attribute ids.
    """
    if length < 1:
        raise ParameterError(f"length must be >= 1, got {length}")
    gen = as_rng(rng)
    return gen.choice(d, size=length, p=zipf_weights(d, exponent))
