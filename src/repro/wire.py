"""Versioned wire format: sketches become real bit strings.

The paper models a sketch as a pair ``(S, Q)``: ``S`` maps a database to a
*bit string* and ``Q`` answers queries from that string alone.  This module
makes the split literal.  Every sketch and streaming summary serializes to a
framed payload via :func:`dump` / :func:`dump_to` and is reconstructed -- in
another process, on another machine -- via :func:`load` / :func:`load_from`,
answering queries bit-identically to the original object.  The payload
length *is* the size the lower bounds are compared against: for every
registered codec, ``obj.size_in_bits() == n_bits`` of the encoded payload,
exactly.

Three frame versions are in service.  Version 1 (the original container)
is frozen: every committed v1 frame decodes bit-identically forever, and
:func:`encode_frame` still emits byte-identical v1 frames on request.
Version 2 is the default frame layout (frozen behind golden fixtures):
binary varint headers, optional zlib payload compression, and chunked
payloads that stream through file objects.  Version 3 is a *multi-frame
container*: many named shards in one file behind a trailing manifest, so
encoding streams in one pass and decoding can seek straight to one shard
without touching the rest.

Version 1 layout (all multi-byte header fields big-endian)::

    magic      4 bytes   b"IFSK"
    version    u8        1
    codec      u8 + n    length-prefixed ASCII codec name
    has_params u8        1 if a SketchParams block follows
    params     32 bytes  n u64, d u32, k u32, epsilon f64, delta f64
    extras     u32 + n   length-prefixed canonical JSON (codec metadata)
    n_bits     u64       exact payload length in bits
    payload    bytes     ceil(n_bits / 8) bytes, zero padded
    crc32      u32       CRC-32 of every preceding byte

Version 2 layout (varint = canonical unsigned LEB128, svarint = zigzag
LEB128; fixed-width fields big-endian)::

    magic      4 bytes   b"IFSK"
    version    u8        2
    codec      u8 + n    length-prefixed ASCII codec name
    flags      u8        bit0 PARAMS, bit1 ZLIB, bit2 CHUNKED
    params     varint n, varint d, varint k, f64 epsilon, f64 delta
                         (present iff PARAMS)
    extras     varint field count, then per field (sorted by key):
                 key      u8 + n    length-prefixed ASCII field name
                 tag      u8        0 int, 1 float, 2 bool, 3 str
                 value    svarint / f64 / u8 / varint + UTF-8 bytes
    n_bits     varint    exact *uncompressed* payload length in bits
    payload    not CHUNKED: varint stored byte length, then the bytes
               CHUNKED:     repeated [u32 length, chunk bytes], ended by
                            a u32 zero sentinel
    crc32      u32       running CRC-32 of every preceding byte

When ZLIB is set the stored payload bytes are a zlib stream whose
decompressed length is ``ceil(n_bits / 8)``.  **The charged size never
changes**: ``n_bits`` is always the uncompressed bit count, so
``size_in_bits() == n_bits`` holds with and without compression --
compression is transport thrift, not accounting thrift, exactly as the
lower bounds require (they constrain the information content, and a
deflated frame carries the same information).

Version 3 layout -- the multi-frame container (varint as in v2; u32/u64
big-endian; crc32 fields cover every byte of their own section only)::

    container  := magic u8(3) meta codec_table u32(header crc32)
                  { u8(0x01) record }*  u8(0x00) manifest
                  u32(manifest crc32) footer
    meta       := the v2 extras encoding (varint field count, then
                  sorted key/tag/value fields) -- container-level
                  metadata, e.g. a snapshot's {"last_seq": seq}
    codec_table:= varint count, then per codec u8 + n length-prefixed
                  ASCII name; unique, non-empty -- the dictionary that
                  records reference by index instead of repeating names
    record     := varint codec_index, flags u8 (bit0 PARAMS, bit1 ZLIB,
                  bit3 DELTA; ZLIB and DELTA mutually exclusive, never
                  CHUNKED), params and extras as in v2, varint n_bits,
                  varint stored byte length, stored bytes,
                  u32(record crc32)
    manifest   := varint count, then per entry: u8 + n shard name
                  (unique when non-empty; "" = anonymous), varint
                  codec_index, varint offset (of the record's first
                  byte, after its 0x01 sentinel), varint record_bytes,
                  varint n_bits, u32 crc (duplicating the record's own
                  trailing crc32, so a seeking reader can verify a
                  fetched record against the manifest alone)
    footer     := u64 manifest offset, u32 crc32 of those 8 bytes,
                  b"KSFI" -- 16 fixed bytes, so a seeking reader finds
                  the manifest by reading the file tail

When DELTA is set the stored bytes are a sparse row encoding of the
packed payload: varint popcount followed by varint-encoded gaps between
consecutive set-bit positions (gap 0 is the first position, later gaps
exclude the predecessor itself).  The writer picks the smallest stored
representation per record -- raw packed bytes, delta, or zlib -- and the
charged ``n_bits`` stays the uncompressed bit count in every case, same
accounting rule as ZLIB.

The manifest trails the records so :class:`ContainerWriter` streams an
unbounded fleet in one pass, while :class:`ContainerReader` (seekable
streams) reads header + footer + manifest and then fetches exactly the
records asked for -- a single-shard load of a 64-shard container touches
O(header + manifest + that record) bytes.  :func:`iter_container_frames`
/ :func:`iter_container_objects` are the sequential one-pass siblings
(sockets, pipes) holding at most one undecoded frame, and
:func:`inspect_container` skims structure and CRCs without decoding any
payload.  A *single anonymous frame* wrapped in a container is how v3
flows through every frame-shaped channel (``dump(version=3)``, a socket
LOAD body, a WAL record): :func:`read_frame` / :func:`load` accept
exactly that shape and refuse multi-frame containers, which go through
the container entry points.  The server's persistence snapshot is an
ordinary v3 container whose meta carries the journal watermark, so
``repro compact`` output is directly ``repro push``-able.

The *payload* carries exactly the bits the sketch's size accounting
charges; the header carries only public parameters (shapes, universe
sizes, stream lengths, hash-family metadata) in the same spirit as
:mod:`repro.db.bitmatrix`'s convention that a matrix's shape is public
metadata, not payload.  Decoding is strict: bad magic, unknown codec or
version, truncated or oversized buffers, checksum mismatches, misdeclared
bit counts, and nonzero padding all raise
:class:`~repro.errors.WireFormatError`.  :func:`decode_frame`,
:func:`read_frame`, and :func:`load` dispatch by the version byte, so both
generations decode through one entry point.

Chunked v2 frames are stream-first end to end: :func:`dump_to` drains the
payload through :meth:`~repro.db.serialize.BitWriter.iter_packed` in
bounded windows (never materializing the packed byte string), and
:func:`load_from` hands codecs a windowed
:meth:`~repro.db.serialize.BitReader.windowed` that pulls chunks from the
file as bits are consumed, verifying the running CRC when the final chunk
arrives.  :func:`inspect_frame` reads the header (and checks the CRC by
skimming) without decoding the payload at all.

Codecs are registered per *sketcher name* (``release-db``, ``subsample``,
...) and dispatch by concrete summary type, so
:class:`~repro.core.hybrid.BestOfNaiveSketcher` -- whose output is always
one of the three naive sketch types -- round-trips through whichever codec
matches the sketch it actually built.  Every codec encodes into and
decodes from a single :class:`Header` builder (typed fields, one
serialization of both the v1 JSON block and the v2 binary fields) instead
of hand-rolling extras dicts.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator, Mapping

import numpy as np

from .core.importance import PROBABILITY_BITS, ImportanceSampleSketch
from .core.release_answers import ReleaseAnswersSketch
from .core.release_db import ReleaseDbSketch
from .core.subsample import SubsampleSketch
from .db.database import BinaryDatabase
from .db.packed import PackedRows, pack_rows
from .db.serialize import (
    DEFAULT_CHUNK_BYTES,
    BitReader,
    BitWriter,
    decode_uvarints,
    encode_svarint,
    encode_uvarint,
    encode_uvarints,
    read_svarint,
    read_uvarint,
    uvarint_lengths,
)
from .errors import ReproError, SketchSizeError, WireFormatError
from .params import SketchParams
from .streaming.base import COUNT_BITS, StreamSummary, item_id_bits
from .streaming.count_min import CountMinSketch
from .streaming.itemset_stream import StreamingItemsetMiner
from .streaming.lossy_counting import LossyCounting
from .streaming.misra_gries import MisraGries
from .streaming.reservoir import ReservoirSample, RowReservoir
from .streaming.space_saving import SpaceSaving
from .streaming.sticky_sampling import StickySampling

__all__ = [
    "MAGIC",
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_V3",
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION_ENV",
    "DEFAULT_CHUNK_BYTES",
    "default_wire_version",
    "peek_wire_version",
    "Header",
    "Frame",
    "FrameInfo",
    "ManifestEntry",
    "ContainerInfo",
    "ContainerWriter",
    "ContainerReader",
    "write_container",
    "iter_container_frames",
    "iter_container_objects",
    "inspect_container",
    "SketchCodec",
    "register_codec",
    "codec_names",
    "codec_for",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "inspect_frame",
    "dump",
    "dump_to",
    "load",
    "load_from",
    "load_as",
    "payload_size_bits",
]

MAGIC = b"IFSK"
WIRE_V1 = 1
WIRE_V2 = 2
WIRE_V3 = 3
SUPPORTED_WIRE_VERSIONS = (WIRE_V1, WIRE_V2, WIRE_V3)
#: The current default frame version for new encodes.
WIRE_VERSION = WIRE_V2
#: Environment override for the default (the CI compat leg sets it to 1).
WIRE_VERSION_ENV = "REPRO_WIRE_VERSION"

_PARAMS_STRUCT = struct.Struct(">QIIdd")

_FLAG_PARAMS = 0x01
_FLAG_ZLIB = 0x02
_FLAG_CHUNKED = 0x04
_FLAG_DELTA = 0x08
_KNOWN_FLAGS = _FLAG_PARAMS | _FLAG_ZLIB | _FLAG_CHUNKED
#: v3 records drop CHUNKED (stored length is always known) and add DELTA.
_KNOWN_FLAGS_V3 = _FLAG_PARAMS | _FLAG_ZLIB | _FLAG_DELTA

#: Container footer: manifest offset + its CRC + the reversed magic.
_CONTAINER_END = b"KSFI"
_FOOTER_BYTES = 16
_RECORD_SENTINEL = 0x01
_MANIFEST_SENTINEL = 0x00
#: Hard caps on decoded container sections (hostile-peer guards).
_MAX_CONTAINER_CODECS = 4096
_MAX_CONTAINER_ENTRIES = 1 << 20

_FIELD_INT = 0
_FIELD_FLOAT = 1
_FIELD_BOOL = 2
_FIELD_STR = 3

#: Hard cap on decoded header fields (codecs use at most six).
_MAX_HEADER_FIELDS = 1024


def default_wire_version() -> int:
    """The frame version new encodes use when none is requested.

    :data:`WIRE_VERSION` (currently 2) unless the
    :data:`WIRE_VERSION_ENV` environment variable selects a supported
    version explicitly -- the hook the forced-v1 CI compatibility leg
    uses.
    """
    raw = os.environ.get(WIRE_VERSION_ENV)
    if raw is None:
        return WIRE_VERSION
    try:
        version = int(raw)
    except ValueError:
        raise WireFormatError(
            f"{WIRE_VERSION_ENV}={raw!r} is not a wire version number"
        ) from None
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"{WIRE_VERSION_ENV}={version} unsupported "
            f"(this build writes {SUPPORTED_WIRE_VERSIONS})"
        )
    return version


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


# ----------------------------------------------------------------------
# The shared header-builder.
# ----------------------------------------------------------------------
class Header:
    """The codecs' common header-builder and typed decode view.

    On encode a codec fills the builder -- :meth:`set_params` for the
    public :class:`SketchParams` block, :meth:`set` for typed metadata
    fields -- and the frame writer serializes it once (canonical JSON
    under v1, binary varint fields under v2).  On decode the codec reads
    the same fields back through the typed getters, every failure
    surfacing as :class:`WireFormatError`.  Field values are restricted
    to the scalar types both serializations carry losslessly: ``bool``,
    ``int``, ``float``, ``str``.
    """

    __slots__ = ("params", "_fields")

    def __init__(
        self,
        params: SketchParams | None = None,
        fields: Mapping[str, Any] | None = None,
    ) -> None:
        self.params = params
        self._fields: dict[str, Any] = {}
        if fields:
            for key, value in fields.items():
                self.set(key, value)

    @classmethod
    def _decoded(
        cls, params: SketchParams | None, fields: dict[str, Any]
    ) -> "Header":
        """A view over already-parsed fields (typed getters still gate use)."""
        header = cls(params)
        header._fields = fields
        return header

    def set_params(self, params: SketchParams | None) -> "Header":
        """Attach the public parameter block."""
        self.params = params
        return self

    def set(self, key: str, value: Any) -> "Header":
        """Add one typed metadata field (chainable)."""
        if not isinstance(key, str) or not 1 <= len(key) <= 255:
            raise WireFormatError(f"header field key {key!r} must be 1..255 chars")
        try:
            key.encode("ascii")
        except UnicodeEncodeError as exc:
            raise WireFormatError(f"header field key {key!r} is not ASCII") from exc
        if not isinstance(value, (bool, int, float, str)):
            raise WireFormatError(
                f"header field {key!r} has unsupported type {type(value).__name__}"
            )
        self._fields[key] = value
        return self

    @property
    def fields(self) -> dict[str, Any]:
        """The metadata fields as a plain dict (copy)."""
        return dict(self._fields)

    def _get(self, key: str) -> Any:
        value = self._fields.get(key)
        _require(value is not None, f"frame header is missing extra {key!r}")
        return value

    def get_int(self, key: str) -> int:
        """Typed field access; bools are not ints on the wire."""
        value = self._get(key)
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"extra {key!r} must be int",
        )
        return value

    def get_float(self, key: str) -> float:
        value = self._get(key)
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"extra {key!r} must be a number",
        )
        return float(value)

    def get_bool(self, key: str) -> bool:
        value = self._get(key)
        _require(isinstance(value, bool), f"extra {key!r} must be bool")
        return value

    def get_str(self, key: str) -> str:
        value = self._get(key)
        _require(isinstance(value, str), f"extra {key!r} must be str")
        return value


class Frame:
    """A decoded wire frame: codec id, header, and the payload.

    Frames read from a stream (:func:`read_frame`) keep chunked payloads
    *lazy*: the bytes stay in the file until :meth:`reader` pulls them in
    windows or :attr:`payload` materializes them, and the trailing CRC is
    verified exactly when the final chunk is consumed.  In-memory frames
    (:func:`decode_frame`) are always materialized and verified up front.
    """

    __slots__ = (
        "codec",
        "version",
        "header",
        "n_bits",
        "compressed",
        "chunked",
        "delta",
        "_payload",
        "_chunks",
    )

    def __init__(
        self,
        codec: str,
        header: Header,
        n_bits: int,
        *,
        version: int,
        payload: bytes | None = None,
        chunks: Iterator[bytes] | None = None,
        compressed: bool = False,
        chunked: bool = False,
        delta: bool = False,
    ) -> None:
        if (payload is None) == (chunks is None):
            raise WireFormatError("frame needs exactly one of payload or chunks")
        self.codec = codec
        self.version = version
        self.header = header
        self.n_bits = n_bits
        self.compressed = compressed
        self.chunked = chunked
        self.delta = delta
        self._payload = payload
        self._chunks = chunks

    @property
    def params(self) -> SketchParams | None:
        """The public parameter block (header passthrough)."""
        return self.header.params

    @property
    def extras(self) -> dict[str, Any]:
        """The header's metadata fields as a plain dict."""
        return self.header.fields

    def _claim_chunks(self) -> Iterator[bytes]:
        if self._chunks is None:
            raise WireFormatError("frame payload stream already consumed")
        chunks, self._chunks = self._chunks, None
        return chunks

    @property
    def payload(self) -> bytes:
        """The uncompressed payload bytes (materialized on first access)."""
        if self._payload is None:
            self._payload = b"".join(self._claim_chunks())
        return self._payload

    def reader(self) -> BitReader:
        """A strict bit reader over the payload.

        In-memory frames get the eager reader (validates length and
        padding up front); streamed frames get the windowed reader, which
        enforces the same invariants chunk by chunk without materializing
        the payload.
        """
        if self._payload is not None:
            return BitReader(self._payload, self.n_bits)
        return BitReader.windowed(self._claim_chunks(), self.n_bits)


@dataclass(frozen=True)
class FrameInfo:
    """What :func:`inspect_frame` learns from a frame without decoding it."""

    codec: str
    version: int
    params: SketchParams | None
    extras: dict[str, Any]
    n_bits: int
    compressed: bool
    chunked: bool
    header_bytes: int
    stored_payload_bytes: int
    frame_bytes: int
    crc_ok: bool
    delta: bool = False


@dataclass(frozen=True)
class ManifestEntry:
    """One shard in a v3 container's trailing manifest.

    ``offset`` is the byte offset of the frame record's first byte
    (after its sentinel) from the start of the container; ``record_bytes``
    is the record's total length including its own CRC trailer, so a
    seekable reader fetches exactly ``[offset, offset + record_bytes)``
    to load this shard and nothing else.  ``crc`` duplicates the record's
    trailing CRC so corruption is detectable from the manifest alone.
    """

    name: str
    codec: str
    codec_index: int
    offset: int
    record_bytes: int
    n_bits: int
    crc: int


@dataclass(frozen=True)
class ContainerInfo:
    """What :func:`inspect_container` learns without decoding any payload."""

    version: int
    meta: dict[str, Any]
    codecs: tuple[str, ...]
    entries: tuple[ManifestEntry, ...]
    header_bytes: int
    manifest_offset: int
    container_bytes: int
    crc_ok: bool


# ----------------------------------------------------------------------
# Checksummed stream adapters.
# ----------------------------------------------------------------------
class _CrcWriter:
    """Counts and CRCs every body byte written to the underlying stream."""

    __slots__ = ("_stream", "crc", "count")

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self.crc = 0
        self.count = 0

    def write(self, data: bytes) -> None:
        if data:
            self._stream.write(data)
            self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
            self.count += len(data)

    def write_raw(self, data: bytes) -> None:
        """Write without updating the running CRC (the trailer itself)."""
        self._stream.write(data)
        self.count += len(data)


class _CrcReader:
    """Exact reads with a running CRC; short reads are frame errors.

    ``max_bytes`` bounds the total bytes this reader will consume from
    the stream.  The budget is checked *before* each read, so a frame
    that declares an oversized section (a 4 GiB chunk, a giant header
    string) is rejected without ever attempting the allocation -- the
    guard a socket server needs against hostile peers.
    """

    __slots__ = ("_stream", "crc", "count", "_max_bytes")

    def __init__(self, stream: IO[bytes], max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise WireFormatError(f"max_bytes must be >= 1, got {max_bytes}")
        self._stream = stream
        self.crc = 0
        self.count = 0
        self._max_bytes = max_bytes

    def _read_exact(self, n: int) -> bytes:
        if n == 0:
            return b""
        if self._max_bytes is not None and self.count + n > self._max_bytes:
            raise WireFormatError(
                f"frame exceeds the {self._max_bytes}-byte limit "
                f"(needs >= {self.count + n} bytes)"
            )
        parts: list[bytes] = []
        got = 0
        while got < n:
            data = self._stream.read(n - got)
            if not data:
                raise WireFormatError(
                    f"truncated frame: wanted {n} bytes, got {got}"
                )
            parts.append(data)
            got += len(data)
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def read(self, n: int) -> bytes:
        data = self._read_exact(n)
        self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
        self.count += len(data)
        return data

    def read_raw(self, n: int) -> bytes:
        """Read without updating the running CRC (the trailer itself)."""
        data = self._read_exact(n)
        self.count += len(data)
        return data


def _read_uvarint(reader: _CrcReader) -> int:
    try:
        return read_uvarint(reader)
    except SketchSizeError as exc:
        raise WireFormatError(f"invalid varint in frame: {exc}") from exc


def _read_svarint(reader: _CrcReader) -> int:
    try:
        return read_svarint(reader)
    except SketchSizeError as exc:
        raise WireFormatError(f"invalid varint in frame: {exc}") from exc


def _validate_codec_name(codec: str) -> bytes:
    try:
        name = codec.encode("ascii")
    except UnicodeEncodeError:
        raise WireFormatError(f"codec name {codec!r} must be ASCII") from None
    if not 1 <= len(name) <= 255:
        raise WireFormatError(f"codec name {codec!r} must be 1..255 ASCII bytes")
    return name


# ----------------------------------------------------------------------
# Version 1: frozen encode (byte-identical forever) and stream decode.
# ----------------------------------------------------------------------
def _encode_frame_v1(
    codec: str,
    params: SketchParams | None,
    extras: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
) -> bytes:
    name = _validate_codec_name(codec)
    parts = [MAGIC, bytes([WIRE_V1]), bytes([len(name)]), name]
    if params is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(
            _PARAMS_STRUCT.pack(params.n, params.d, params.k, params.epsilon, params.delta)
        )
    blob = json.dumps(dict(extras), sort_keys=True, separators=(",", ":")).encode()
    parts.append(struct.pack(">I", len(blob)))
    parts.append(blob)
    parts.append(struct.pack(">Q", n_bits))
    parts.append(payload)
    body = b"".join(parts)
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


def _read_header_v1(reader: _CrcReader) -> tuple[str, Header, int]:
    """Parse a v1 frame through its ``n_bits`` field (magic/version done)."""
    name_len = reader.read(1)[0]
    try:
        codec = reader.read(name_len).decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError("codec name is not ASCII") from exc
    has_params = reader.read(1)[0]
    params: SketchParams | None = None
    if has_params == 1:
        n, d, k, epsilon, delta = _PARAMS_STRUCT.unpack(reader.read(_PARAMS_STRUCT.size))
        try:
            params = SketchParams(n=n, d=d, k=k, epsilon=epsilon, delta=delta)
        except Exception as exc:
            raise WireFormatError(f"invalid params block: {exc}") from exc
    elif has_params != 0:
        raise WireFormatError(f"params flag must be 0 or 1, got {has_params}")
    (extras_len,) = struct.unpack(">I", reader.read(4))
    blob = reader.read(extras_len)
    try:
        extras = json.loads(blob.decode()) if extras_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"invalid extras block: {exc}") from exc
    if not isinstance(extras, dict):
        raise WireFormatError("extras block must decode to an object")
    (n_bits,) = struct.unpack(">Q", reader.read(8))
    return codec, Header._decoded(params, extras), n_bits


def _read_frame_v1(reader: _CrcReader) -> Frame:
    codec, header, n_bits = _read_header_v1(reader)
    payload = reader.read((n_bits + 7) // 8)
    _check_trailing_crc(reader)
    return Frame(codec, header, n_bits, version=WIRE_V1, payload=payload)


# ----------------------------------------------------------------------
# Version 2: varint binary header, optional zlib, chunked streaming.
# ----------------------------------------------------------------------
def _deflate(chunks: Iterable[bytes], level: int = 6) -> Iterator[bytes]:
    deflater = zlib.compressobj(level)
    for chunk in chunks:
        out = deflater.compress(chunk)
        if out:
            yield out
    tail = deflater.flush()
    if tail:
        yield tail


def _inflate(
    chunks: Iterable[bytes], window: int = DEFAULT_CHUNK_BYTES
) -> Iterator[bytes]:
    """Windowed zlib decode: output windows are bounded even for bombs."""
    inflater = zlib.decompressobj()
    for chunk in chunks:
        data = chunk
        while data:
            try:
                out = inflater.decompress(data, window)
            except zlib.error as exc:
                raise WireFormatError(f"corrupt compressed payload: {exc}") from exc
            if out:
                yield out
            data = inflater.unconsumed_tail
    try:
        tail = inflater.flush()
    except zlib.error as exc:
        raise WireFormatError(f"corrupt compressed payload: {exc}") from exc
    if tail:
        yield tail
    if not inflater.eof:
        raise WireFormatError("compressed payload ended before its zlib stream")
    if inflater.unused_data:
        raise WireFormatError("compressed payload has data after its zlib stream")


def _iter_stored(
    reader: _CrcReader, stored_len: int, window: int = DEFAULT_CHUNK_BYTES
) -> Iterator[bytes]:
    remaining = stored_len
    while remaining:
        take = min(window, remaining)
        yield reader.read(take)
        remaining -= take


def _iter_chunked(reader: _CrcReader) -> Iterator[bytes]:
    while True:
        (length,) = struct.unpack(">I", reader.read(4))
        if length == 0:
            return
        yield reader.read(length)


def _check_trailing_crc(reader: _CrcReader) -> None:
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    if reader.crc != expected:
        raise WireFormatError("checksum mismatch: frame corrupted in transit")


def _finalize_payload(
    chunks: Iterable[bytes], need_bytes: int, n_bits: int, reader: _CrcReader
) -> Iterator[bytes]:
    """Enforce the byte total, then verify the CRC once the payload ends."""
    total = 0
    for chunk in chunks:
        if not chunk:
            continue
        total += len(chunk)
        if total > need_bytes:
            raise WireFormatError(
                f"payload of >= {total} bytes disagrees with declared "
                f"{n_bits} bits ({need_bytes} bytes expected)"
            )
        yield chunk
    if total != need_bytes:
        raise WireFormatError(
            f"payload of {total} bytes disagrees with declared "
            f"{n_bits} bits ({need_bytes} bytes expected)"
        )
    _check_trailing_crc(reader)


def _write_params_block(writer: _CrcWriter, params: SketchParams) -> None:
    """The varint params block shared by v2 headers and v3 records."""
    writer.write(
        encode_uvarint(params.n) + encode_uvarint(params.d) + encode_uvarint(params.k)
    )
    writer.write(struct.pack(">dd", params.epsilon, params.delta))


def _write_fields(writer: _CrcWriter, fields: Mapping[str, Any]) -> None:
    """Sorted typed fields (count-prefixed): v2 extras, v3 extras and meta."""
    items = sorted(fields.items())
    writer.write(encode_uvarint(len(items)))
    for key, value in items:
        try:
            key_bytes = key.encode("ascii")
        except (UnicodeEncodeError, AttributeError):
            raise WireFormatError(f"header field key {key!r} is not ASCII") from None
        if not 1 <= len(key_bytes) <= 255:
            raise WireFormatError(f"header field key {key!r} must be 1..255 chars")
        writer.write(bytes([len(key_bytes)]))
        writer.write(key_bytes)
        if isinstance(value, bool):
            writer.write(bytes([_FIELD_BOOL, 1 if value else 0]))
        elif isinstance(value, int):
            writer.write(bytes([_FIELD_INT]) + encode_svarint(value))
        elif isinstance(value, float):
            writer.write(bytes([_FIELD_FLOAT]) + struct.pack(">d", value))
        elif isinstance(value, str):
            data = value.encode("utf-8")
            writer.write(bytes([_FIELD_STR]) + encode_uvarint(len(data)))
            writer.write(data)
        else:
            raise WireFormatError(
                f"header field {key!r} has unsupported type {type(value).__name__}"
            )


def _write_header_v2(
    writer: _CrcWriter,
    name: bytes,
    params: SketchParams | None,
    fields: Mapping[str, Any],
    n_bits: int,
    *,
    compress: bool,
    chunked: bool,
) -> None:
    flags = (
        (_FLAG_PARAMS if params is not None else 0)
        | (_FLAG_ZLIB if compress else 0)
        | (_FLAG_CHUNKED if chunked else 0)
    )
    writer.write(MAGIC)
    writer.write(bytes([WIRE_V2, len(name)]))
    writer.write(name)
    writer.write(bytes([flags]))
    if params is not None:
        _write_params_block(writer, params)
    _write_fields(writer, fields)
    writer.write(encode_uvarint(n_bits))


def _write_frame_v2(
    stream: IO[bytes],
    codec: str,
    params: SketchParams | None,
    fields: Mapping[str, Any],
    payload_chunks: Iterable[bytes],
    n_bits: int,
    *,
    compress: bool,
    chunked: bool,
) -> int:
    name = _validate_codec_name(codec)
    writer = _CrcWriter(stream)
    _write_header_v2(
        writer, name, params, fields, n_bits, compress=compress, chunked=chunked
    )
    source: Iterable[bytes] = payload_chunks
    if compress:
        source = _deflate(source)
    if chunked:
        for chunk in source:
            if not chunk:
                continue
            writer.write(struct.pack(">I", len(chunk)))
            writer.write(chunk)
        writer.write(struct.pack(">I", 0))
    else:
        data = b"".join(source)
        writer.write(encode_uvarint(len(data)))
        writer.write(data)
    writer.write_raw(struct.pack(">I", writer.crc))
    return writer.count


def _read_params_block(reader: _CrcReader) -> SketchParams:
    """Inverse of :func:`_write_params_block`."""
    n = _read_uvarint(reader)
    d = _read_uvarint(reader)
    k = _read_uvarint(reader)
    epsilon, delta = struct.unpack(">dd", reader.read(16))
    try:
        return SketchParams(n=n, d=d, k=k, epsilon=epsilon, delta=delta)
    except Exception as exc:
        raise WireFormatError(f"invalid params block: {exc}") from exc


def _read_fields(reader: _CrcReader) -> dict[str, Any]:
    """Inverse of :func:`_write_fields` (shared by v2 and v3)."""
    n_fields = _read_uvarint(reader)
    if n_fields > _MAX_HEADER_FIELDS:
        raise WireFormatError(f"frame declares {n_fields} header fields")
    fields: dict[str, Any] = {}
    for _ in range(n_fields):
        key_len = reader.read(1)[0]
        if key_len == 0:
            raise WireFormatError("empty header field key")
        try:
            key = reader.read(key_len).decode("ascii")
        except UnicodeDecodeError as exc:
            raise WireFormatError("header field key is not ASCII") from exc
        if key in fields:
            raise WireFormatError(f"duplicate header field {key!r}")
        tag = reader.read(1)[0]
        value: Any
        if tag == _FIELD_INT:
            value = _read_svarint(reader)
        elif tag == _FIELD_FLOAT:
            (value,) = struct.unpack(">d", reader.read(8))
        elif tag == _FIELD_BOOL:
            raw = reader.read(1)[0]
            if raw > 1:
                raise WireFormatError(f"bool field {key!r} has value {raw}")
            value = bool(raw)
        elif tag == _FIELD_STR:
            length = _read_uvarint(reader)
            try:
                value = reader.read(length).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireFormatError(f"str field {key!r} is not UTF-8") from exc
        else:
            raise WireFormatError(f"unknown header field tag {tag}")
        fields[key] = value
    return fields


def _read_header_v2(
    reader: _CrcReader,
) -> tuple[str, Header, int, bool, bool]:
    """Parse a v2 frame through its ``n_bits`` field (magic/version done)."""
    name_len = reader.read(1)[0]
    try:
        codec = reader.read(name_len).decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError("codec name is not ASCII") from exc
    flags = reader.read(1)[0]
    if flags & ~_KNOWN_FLAGS:
        raise WireFormatError(f"unknown frame flags 0x{flags:02x}")
    params: SketchParams | None = None
    if flags & _FLAG_PARAMS:
        params = _read_params_block(reader)
    fields = _read_fields(reader)
    n_bits = _read_uvarint(reader)
    compressed = bool(flags & _FLAG_ZLIB)
    chunked = bool(flags & _FLAG_CHUNKED)
    return codec, Header._decoded(params, fields), n_bits, compressed, chunked


def _read_frame_v2(reader: _CrcReader) -> Frame:
    codec, header, n_bits, compressed, chunked = _read_header_v2(reader)
    if chunked:
        raw: Iterator[bytes] = _iter_chunked(reader)
    else:
        stored_len = _read_uvarint(reader)
        raw = _iter_stored(reader, stored_len)
    source = _inflate(raw) if compressed else raw
    chunks = _finalize_payload(source, (n_bits + 7) // 8, n_bits, reader)
    return Frame(
        codec,
        header,
        n_bits,
        version=WIRE_V2,
        chunks=chunks,
        compressed=compressed,
        chunked=chunked,
    )


# ----------------------------------------------------------------------
# Version 3: the multi-frame container (codec dictionary, delta payloads,
# trailing shard manifest for one-pass encode + seekable lazy decode).
# ----------------------------------------------------------------------
def _validate_shard_name(name: str) -> bytes:
    """Shard names are 0..255 ASCII bytes (empty = anonymous)."""
    if not isinstance(name, str):
        raise WireFormatError(f"shard name must be str, got {type(name).__name__}")
    try:
        raw = name.encode("ascii")
    except UnicodeEncodeError:
        raise WireFormatError(f"shard name {name!r} must be ASCII") from None
    if len(raw) > 255:
        raise WireFormatError(f"shard name {name!r} exceeds 255 bytes")
    return raw


def _delta_encode_payload(payload: bytes, n_bits: int) -> bytes | None:
    """Varint-delta encoding of the payload's set-bit positions.

    The stored form is ``varint(popcount)`` followed by one varint per
    set bit: the first is the absolute bit position, each later one the
    gap to the previous set bit minus one.  Returns ``None`` unless the
    encoding is *strictly* smaller than the packed payload -- the caller
    keeps the raw layout otherwise, so dense payloads never regress.
    Stored bytes only: the charged ``n_bits`` is untouched.
    """
    if not n_bits or not payload:
        return None
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:n_bits]
    positions = np.flatnonzero(bits).astype(np.uint64)
    gaps = positions.copy()
    if positions.size > 1:
        gaps[1:] = positions[1:] - positions[:-1] - np.uint64(1)
    head = encode_uvarint(int(positions.size))
    # Price the run before encoding: skip the encode when it cannot win.
    stored = len(head) + int(uvarint_lengths(gaps).sum()) if gaps.size else len(head)
    if stored >= len(payload):
        return None
    return head + encode_uvarints(gaps)


def _delta_decode_payload(data: bytes, n_bits: int) -> bytes:
    """Inverse of :func:`_delta_encode_payload`, strict on every input.

    Truncated or trailing varints, positions at or past ``n_bits``,
    non-increasing positions (which also catches any 64-bit wraparound:
    a single gap cannot wrap past its predecessor), and padded varint
    groups all raise :class:`WireFormatError`.
    """
    need_bytes = (n_bits + 7) // 8
    stream = io.BytesIO(data)
    try:
        count = read_uvarint(stream)
        gaps = decode_uvarints(stream.read(), count)
    except SketchSizeError as exc:
        raise WireFormatError(f"corrupt delta payload: {exc}") from exc
    if count > n_bits:
        raise WireFormatError(
            f"delta payload declares {count} set bits in {n_bits} bits"
        )
    bits = np.zeros(need_bytes * 8, dtype=np.uint8)
    if count:
        positions = np.cumsum(gaps, dtype=np.uint64) + np.arange(
            count, dtype=np.uint64
        )
        if (count > 1 and not (positions[1:] > positions[:-1]).all()) or int(
            positions[-1]
        ) >= n_bits:
            raise WireFormatError("delta payload positions exceed declared bits")
        bits[positions.astype(np.int64)] = 1
    return np.packbits(bits).tobytes()


def _encode_record_v3(
    codec_index: int,
    params: SketchParams | None,
    fields: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
    *,
    compress: bool,
    delta: bool,
) -> tuple[bytes, int]:
    """One container frame record plus its CRC.

    The stored payload is the smallest of raw / delta / zlib among the
    enabled transforms (delta preferred on ties); ``n_bits`` -- the
    charged size -- is written verbatim regardless.
    """
    stored = payload
    flags = _FLAG_PARAMS if params is not None else 0
    if delta:
        candidate = _delta_encode_payload(payload, n_bits)
        if candidate is not None:
            stored = candidate
            flags |= _FLAG_DELTA
    if compress:
        candidate = zlib.compress(payload, 6)
        if len(candidate) < len(stored):
            stored = candidate
            flags = (flags & ~_FLAG_DELTA) | _FLAG_ZLIB
    out = io.BytesIO()
    writer = _CrcWriter(out)
    writer.write(encode_uvarint(codec_index))
    writer.write(bytes([flags]))
    if params is not None:
        _write_params_block(writer, params)
    _write_fields(writer, fields)
    writer.write(encode_uvarint(n_bits))
    writer.write(encode_uvarint(len(stored)))
    writer.write(stored)
    crc = writer.crc
    writer.write_raw(struct.pack(">I", crc))
    return out.getvalue(), crc


def _read_record_header_v3(
    reader: _CrcReader, codecs: tuple[str, ...]
) -> tuple[int, str, Header, int, int]:
    """Parse a record through its ``n_bits`` field; returns flags too."""
    codec_index = _read_uvarint(reader)
    if codec_index >= len(codecs):
        raise WireFormatError(
            f"record codec index {codec_index} outside the container's "
            f"{len(codecs)}-entry codec table"
        )
    flags = reader.read(1)[0]
    if flags & ~_KNOWN_FLAGS_V3:
        raise WireFormatError(f"unknown record flags 0x{flags:02x}")
    if flags & _FLAG_ZLIB and flags & _FLAG_DELTA:
        raise WireFormatError("record sets both ZLIB and DELTA")
    params: SketchParams | None = None
    if flags & _FLAG_PARAMS:
        params = _read_params_block(reader)
    fields = _read_fields(reader)
    n_bits = _read_uvarint(reader)
    header = Header._decoded(params, fields)
    return codec_index, codecs[codec_index], header, n_bits, flags


def _read_record_v3(reader: _CrcReader, codecs: tuple[str, ...]) -> Frame:
    """Decode one record; ``reader.crc`` must be zeroed at record start.

    Raw and zlib payloads come back *lazy* (chunk generator, CRC checked
    at the final chunk); delta payloads are decoded eagerly -- they are
    small by construction -- so the frame is already materialized.
    """
    _, codec, header, n_bits, flags = _read_record_header_v3(reader, codecs)
    stored_len = _read_uvarint(reader)
    need = (n_bits + 7) // 8
    if flags & _FLAG_DELTA:
        data = b"".join(_iter_stored(reader, stored_len))
        _check_trailing_crc(reader)
        payload = _delta_decode_payload(data, n_bits)
        return Frame(
            codec, header, n_bits, version=WIRE_V3, payload=payload, delta=True
        )
    raw: Iterator[bytes] = _iter_stored(reader, stored_len)
    source = _inflate(raw) if flags & _FLAG_ZLIB else raw
    chunks = _finalize_payload(source, need, n_bits, reader)
    return Frame(
        codec,
        header,
        n_bits,
        version=WIRE_V3,
        chunks=chunks,
        compressed=bool(flags & _FLAG_ZLIB),
    )


def _read_container_head(reader: _CrcReader) -> tuple[dict[str, Any], tuple[str, ...]]:
    """Parse meta fields + codec table; the reader sits past the version."""
    meta = _read_fields(reader)
    count = _read_uvarint(reader)
    if count > _MAX_CONTAINER_CODECS:
        raise WireFormatError(f"container declares {count} codecs")
    codecs: list[str] = []
    for _ in range(count):
        name_len = reader.read(1)[0]
        if name_len == 0:
            raise WireFormatError("empty codec name in container table")
        try:
            codecs.append(reader.read(name_len).decode("ascii"))
        except UnicodeDecodeError as exc:
            raise WireFormatError("codec name is not ASCII") from exc
    if len(set(codecs)) != len(codecs):
        raise WireFormatError("duplicate codec name in container table")
    _check_trailing_crc(reader)
    return meta, tuple(codecs)


def _read_manifest(
    reader: _CrcReader, codecs: tuple[str, ...]
) -> tuple[ManifestEntry, ...]:
    """Parse the manifest; ``reader.crc`` must be zeroed at its start."""
    count = _read_uvarint(reader)
    if count > _MAX_CONTAINER_ENTRIES:
        raise WireFormatError(f"container manifest declares {count} entries")
    entries: list[ManifestEntry] = []
    names: set[str] = set()
    last_end = 0
    for _ in range(count):
        name_len = reader.read(1)[0]
        try:
            name = reader.read(name_len).decode("ascii") if name_len else ""
        except UnicodeDecodeError as exc:
            raise WireFormatError("shard name is not ASCII") from exc
        codec_index = _read_uvarint(reader)
        if codec_index >= len(codecs):
            raise WireFormatError(
                f"manifest codec index {codec_index} outside the container's "
                f"{len(codecs)}-entry codec table"
            )
        offset = _read_uvarint(reader)
        record_bytes = _read_uvarint(reader)
        n_bits = _read_uvarint(reader)
        (crc,) = struct.unpack(">I", reader.read(4))
        if record_bytes < 7:
            raise WireFormatError(f"manifest record length {record_bytes} too small")
        if offset < last_end:
            raise WireFormatError("manifest offsets overlap or go backwards")
        last_end = offset + record_bytes
        if name:
            if name in names:
                raise WireFormatError(f"duplicate shard name {name!r} in manifest")
            names.add(name)
        entries.append(
            ManifestEntry(
                name=name,
                codec=codecs[codec_index],
                codec_index=codec_index,
                offset=offset,
                record_bytes=record_bytes,
                n_bits=n_bits,
                crc=crc,
            )
        )
    _check_trailing_crc(reader)
    return tuple(entries)


def _parse_footer(footer: bytes) -> int:
    """Validate the fixed 16-byte footer and return the manifest offset."""
    if len(footer) != _FOOTER_BYTES or footer[-4:] != _CONTAINER_END:
        raise WireFormatError("bad container footer: not a v3 container")
    (manifest_offset,) = struct.unpack(">Q", footer[:8])
    (crc,) = struct.unpack(">I", footer[8:12])
    if zlib.crc32(footer[:8]) & 0xFFFFFFFF != crc:
        raise WireFormatError("container footer checksum mismatch")
    return manifest_offset


class ContainerWriter:
    """Streaming one-pass v3 container encoder.

    The header (meta fields + codec table) goes out at construction,
    each :meth:`add` appends one frame record immediately, and
    :meth:`close` writes the trailing manifest + footer -- nothing is
    buffered beyond the entry list, so a fleet of shards streams through
    a file object in one pass.  ``codecs`` fixes the container's codec
    dictionary up front (default: every registered codec, so arbitrary
    mixes can be added incrementally).

    ``compress``/``delta`` choose the default stored-payload transforms;
    per-frame overrides go through :meth:`add`.  Either way the *charged*
    ``n_bits`` written per record is exactly the codec's payload bit
    count -- transforms are transport thrift, never accounting thrift.
    """

    def __init__(
        self,
        stream: IO[bytes],
        *,
        meta: Mapping[str, Any] | None = None,
        codecs: tuple[str, ...] | None = None,
        compress: bool = False,
        delta: bool = True,
    ) -> None:
        table = tuple(codecs) if codecs is not None else codec_names()
        if not table:
            raise WireFormatError("container codec table cannot be empty")
        if len(table) > _MAX_CONTAINER_CODECS:
            raise WireFormatError(f"container codec table of {len(table)} entries")
        if len(set(table)) != len(table):
            raise WireFormatError("duplicate codec name in container table")
        self._codecs = table
        self._index = {name: i for i, name in enumerate(table)}
        self._compress = compress
        self._delta = delta
        self._meta = Header(fields=dict(meta) if meta else {}).fields
        self._stream = stream
        self._entries: list[ManifestEntry] = []
        self._names: set[str] = set()
        self._closed = False
        writer = _CrcWriter(stream)
        writer.write(MAGIC)
        writer.write(bytes([WIRE_V3]))
        _write_fields(writer, self._meta)
        writer.write(encode_uvarint(len(table)))
        for name in table:
            raw = _validate_codec_name(name)
            writer.write(bytes([len(raw)]))
            writer.write(raw)
        writer.write_raw(struct.pack(">I", writer.crc))
        self._count = writer.count

    def __enter__(self) -> "ContainerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._closed:
            self.close()

    @property
    def bytes_written(self) -> int:
        return self._count

    @property
    def entries(self) -> tuple[ManifestEntry, ...]:
        return tuple(self._entries)

    def _require_open(self) -> None:
        if self._closed:
            raise WireFormatError("container already closed")

    def _claim_name(self, name: str) -> None:
        if name:
            if name in self._names:
                raise WireFormatError(f"duplicate shard name {name!r} in container")
            self._names.add(name)

    def add(
        self,
        name: str,
        obj: Any,
        *,
        compress: bool | None = None,
        delta: bool | None = None,
    ) -> ManifestEntry:
        """Encode one summary as the next frame record."""
        codec = codec_for(obj)
        header = Header()
        buf, n_bits = _encoded_payload(codec.encode(obj, header))
        return self._add_encoded(
            name,
            codec.name,
            header.params,
            header.fields,
            buf,
            n_bits,
            compress=self._compress if compress is None else compress,
            delta=self._delta if delta is None else delta,
        )

    def _add_encoded(
        self,
        name: str,
        codec_name: str,
        params: SketchParams | None,
        fields: Mapping[str, Any],
        payload: bytes,
        n_bits: int,
        *,
        compress: bool,
        delta: bool,
    ) -> ManifestEntry:
        self._require_open()
        _validate_shard_name(name)
        if len(self._entries) >= _MAX_CONTAINER_ENTRIES:
            raise WireFormatError(f"container exceeds {_MAX_CONTAINER_ENTRIES} frames")
        index = self._index.get(codec_name)
        if index is None:
            raise WireFormatError(
                f"codec {codec_name!r} is not in this container's codec table"
            )
        if len(payload) != (n_bits + 7) // 8:
            raise WireFormatError(
                f"payload of {len(payload)} bytes disagrees with {n_bits} bits"
            )
        self._claim_name(name)
        record, crc = _encode_record_v3(
            index, params, fields, payload, n_bits, compress=compress, delta=delta
        )
        return self._append_record(name, codec_name, index, record, n_bits, crc)

    def add_record(
        self, name: str, codec_name: str, record: bytes, n_bits: int, crc: int
    ) -> ManifestEntry:
        """Splice a verbatim frame record from another same-table container.

        No payload decode happens: the record bytes (including their CRC
        trailer) are validated and copied as-is, which is what lets
        lazy re-sharding -- :meth:`ContainerReader.extract`, the client's
        ``LOAD``-many chunking -- move shards without paying a codec
        round-trip.  The record's codec index must resolve to
        ``codec_name`` under *this* writer's table.
        """
        self._require_open()
        _validate_shard_name(name)
        if len(self._entries) >= _MAX_CONTAINER_ENTRIES:
            raise WireFormatError(f"container exceeds {_MAX_CONTAINER_ENTRIES} frames")
        if len(record) < 7:
            raise WireFormatError(f"record of {len(record)} bytes is too short")
        (trailer,) = struct.unpack(">I", record[-4:])
        if trailer != crc or zlib.crc32(record[:-4]) & 0xFFFFFFFF != crc:
            raise WireFormatError("record checksum mismatch: refusing to splice")
        try:
            index = read_uvarint(io.BytesIO(record))
        except SketchSizeError as exc:
            raise WireFormatError(f"invalid record codec index: {exc}") from exc
        if self._index.get(codec_name) != index:
            raise WireFormatError(
                f"record codec index {index} does not resolve to {codec_name!r} "
                "under this container's codec table"
            )
        self._claim_name(name)
        return self._append_record(name, codec_name, index, record, n_bits, crc)

    def _append_record(
        self, name: str, codec_name: str, index: int, record: bytes, n_bits: int, crc: int
    ) -> ManifestEntry:
        self._stream.write(bytes([_RECORD_SENTINEL]))
        self._stream.write(record)
        entry = ManifestEntry(
            name=name,
            codec=codec_name,
            codec_index=index,
            offset=self._count + 1,
            record_bytes=len(record),
            n_bits=n_bits,
            crc=crc,
        )
        self._count += 1 + len(record)
        self._entries.append(entry)
        return entry

    def close(self) -> tuple[ManifestEntry, ...]:
        """Write the manifest trailer + footer; returns the manifest."""
        self._require_open()
        self._closed = True
        self._stream.write(bytes([_MANIFEST_SENTINEL]))
        manifest_offset = self._count + 1
        writer = _CrcWriter(self._stream)
        writer.write(encode_uvarint(len(self._entries)))
        for entry in self._entries:
            raw = entry.name.encode("ascii")
            writer.write(bytes([len(raw)]))
            writer.write(raw)
            writer.write(encode_uvarint(entry.codec_index))
            writer.write(encode_uvarint(entry.offset))
            writer.write(encode_uvarint(entry.record_bytes))
            writer.write(encode_uvarint(entry.n_bits))
            writer.write(struct.pack(">I", entry.crc))
        writer.write_raw(struct.pack(">I", writer.crc))
        offset_bytes = struct.pack(">Q", manifest_offset)
        self._stream.write(offset_bytes)
        self._stream.write(struct.pack(">I", zlib.crc32(offset_bytes) & 0xFFFFFFFF))
        self._stream.write(_CONTAINER_END)
        self._count = manifest_offset + writer.count + _FOOTER_BYTES
        return tuple(self._entries)


def write_container(
    stream: IO[bytes],
    items: Iterable[tuple[str, Any]],
    *,
    meta: Mapping[str, Any] | None = None,
    codecs: tuple[str, ...] | None = None,
    compress: bool = False,
    delta: bool = True,
) -> tuple[ManifestEntry, ...]:
    """Encode ``(name, summary)`` pairs as one v3 container; one pass."""
    writer = ContainerWriter(
        stream, meta=meta, codecs=codecs, compress=compress, delta=delta
    )
    for name, obj in items:
        writer.add(name, obj)
    return writer.close()


class ContainerReader:
    """Manifest-driven random access over a *seekable* v3 container.

    :meth:`open` reads the fixed footer, the trailing manifest, and the
    header (meta + codec table) -- O(header + manifest) bytes, no frame
    record touched.  Every per-shard accessor then seeks straight to the
    one record the manifest names: :meth:`frame` / :meth:`load` decode
    exactly that record, :meth:`record` fetches its verbatim bytes, and
    :meth:`extract` re-wraps it as a standalone single-frame container
    (same codec table, so the record bytes -- and their CRC -- are
    spliced untouched).  ``max_bytes`` bounds each section read (header,
    manifest, every record) separately: it is the same per-chunk budget
    the sketch server applies to socket frames.
    """

    def __init__(
        self,
        stream: IO[bytes],
        *,
        meta: dict[str, Any],
        codecs: tuple[str, ...],
        entries: tuple[ManifestEntry, ...],
        header_bytes: int,
        manifest_offset: int,
        container_bytes: int,
        max_bytes: int | None,
    ) -> None:
        self._stream = stream
        self._meta = meta
        self._codecs = codecs
        self._entries = entries
        self._by_name = {e.name: e for e in entries if e.name}
        self._header_bytes = header_bytes
        self._manifest_offset = manifest_offset
        self._container_bytes = container_bytes
        self._max_bytes = max_bytes

    @classmethod
    def open(cls, stream: IO[bytes], *, max_bytes: int | None = None) -> "ContainerReader":
        """Open a seekable stream positioned anywhere; raises on non-v3."""
        stream.seek(0, io.SEEK_END)
        size = stream.tell()
        if size < _FOOTER_BYTES + 15:
            raise WireFormatError(f"container of {size} bytes is truncated")
        stream.seek(size - _FOOTER_BYTES)
        footer = stream.read(_FOOTER_BYTES)
        manifest_offset = _parse_footer(footer)
        if not 10 <= manifest_offset <= size - _FOOTER_BYTES - 5:
            raise WireFormatError(
                f"container manifest offset {manifest_offset} out of range"
            )
        stream.seek(0)
        reader = _CrcReader(stream, max_bytes)
        magic = reader.read(len(MAGIC))
        if magic != MAGIC:
            raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
        version = reader.read(1)[0]
        if version != WIRE_V3:
            raise WireFormatError(
                f"wire version {version} is not a multi-frame container"
            )
        meta, codecs = _read_container_head(reader)
        header_bytes = reader.count
        stream.seek(manifest_offset - 1)
        sentinel = stream.read(1)
        if sentinel != bytes([_MANIFEST_SENTINEL]):
            raise WireFormatError("container manifest is not where the footer points")
        mreader = _CrcReader(stream, max_bytes)
        entries = _read_manifest(mreader, codecs)
        manifest_end = manifest_offset + mreader.count + 4
        if manifest_end != size - _FOOTER_BYTES + 4:
            raise WireFormatError("trailing garbage between manifest and footer")
        for entry in entries:
            if entry.offset <= header_bytes or entry.offset + entry.record_bytes > manifest_offset - 1:
                raise WireFormatError(
                    f"manifest entry {entry.name!r} points outside the frame region"
                )
        return cls(
            stream,
            meta=meta,
            codecs=codecs,
            entries=entries,
            header_bytes=header_bytes,
            manifest_offset=manifest_offset,
            container_bytes=size,
            max_bytes=max_bytes,
        )

    @property
    def meta(self) -> dict[str, Any]:
        return dict(self._meta)

    @property
    def codecs(self) -> tuple[str, ...]:
        return self._codecs

    @property
    def entries(self) -> tuple[ManifestEntry, ...]:
        return self._entries

    @property
    def header_bytes(self) -> int:
        return self._header_bytes

    @property
    def manifest_offset(self) -> int:
        return self._manifest_offset

    @property
    def container_bytes(self) -> int:
        return self._container_bytes

    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def entry(self, name: str | ManifestEntry) -> ManifestEntry:
        if isinstance(name, ManifestEntry):
            return name
        entry = self._by_name.get(name)
        if entry is None:
            raise WireFormatError(f"container has no shard named {name!r}")
        return entry

    def _seek_record(self, entry: ManifestEntry) -> None:
        """Position the stream on the record, checking its sentinel byte."""
        self._stream.seek(entry.offset - 1)
        sentinel = self._stream.read(1)
        if sentinel != bytes([_RECORD_SENTINEL]):
            raise WireFormatError(
                f"manifest entry {entry.name!r} does not point at a record"
            )

    def record(self, name: str | ManifestEntry) -> bytes:
        """The shard's verbatim record bytes (CRC verified, not decoded)."""
        entry = self.entry(name)
        if self._max_bytes is not None and entry.record_bytes > self._max_bytes:
            raise WireFormatError(
                f"record of {entry.record_bytes} bytes exceeds the "
                f"{self._max_bytes}-byte limit"
            )
        self._seek_record(entry)
        data = self._stream.read(entry.record_bytes)
        if len(data) != entry.record_bytes:
            raise WireFormatError(
                f"truncated record: wanted {entry.record_bytes} bytes, got {len(data)}"
            )
        (trailer,) = struct.unpack(">I", data[-4:])
        if trailer != entry.crc or zlib.crc32(data[:-4]) & 0xFFFFFFFF != entry.crc:
            raise WireFormatError(
                f"checksum mismatch on shard {entry.name!r}: container corrupted"
            )
        return data

    def frame(self, name: str | ManifestEntry) -> Frame:
        """Seek to one record and decode it; O(that frame) bytes read."""
        entry = self.entry(name)
        self._seek_record(entry)
        budget = entry.record_bytes
        if self._max_bytes is not None:
            budget = min(budget, self._max_bytes)
        reader = _CrcReader(self._stream, budget)
        frame = _read_record_v3(reader, self._codecs)
        frame.payload  # noqa: B018 -- materialize: runs byte-total and CRC checks
        if (
            reader.count != entry.record_bytes
            or frame.n_bits != entry.n_bits
            or frame.codec != entry.codec
            or reader.crc != entry.crc
        ):
            raise WireFormatError(
                f"record for shard {entry.name!r} disagrees with its manifest entry"
            )
        return frame

    def load(self, name: str | ManifestEntry) -> Any:
        """Decode one shard to its summary object (manifest-driven seek)."""
        return _decode_frame_obj(self.frame(name))

    def extract(self, name: str | ManifestEntry) -> bytes:
        """A standalone single-frame container carrying this shard.

        The record bytes are spliced verbatim under the same codec table
        (indices -- and therefore the record CRC -- stay valid), so the
        result is ``repro push``-able without ever decoding the payload.
        """
        entry = self.entry(name)
        out = io.BytesIO()
        writer = ContainerWriter(out, codecs=self._codecs)
        writer.add_record(
            entry.name, entry.codec, self.record(entry), entry.n_bits, entry.crc
        )
        writer.close()
        return out.getvalue()

    def iter_frames(self) -> Iterator[tuple[str, Frame]]:
        """Decode records in manifest order, one materialized at a time."""
        for entry in self._entries:
            yield entry.name, self.frame(entry)

    def iter_objects(self) -> Iterator[tuple[str, Any]]:
        """Decode summaries in manifest order, one at a time."""
        for entry in self._entries:
            yield entry.name, self.load(entry)


def iter_container_frames(
    stream: IO[bytes], *, max_bytes: int | None = None
) -> Iterator[Frame]:
    """Sequential one-pass decode of a v3 container (sockets, pipes).

    Yields each frame in container order holding at most one undecoded
    frame: raw/zlib payloads are lazy chunk generators that pull from the
    stream as the consumer reads bits.  A frame the consumer skipped (or
    only partially materialized through :attr:`Frame.payload`) is drained
    before the next one is parsed; a frame whose chunk iterator was
    claimed but abandoned mid-payload raises, because the stream position
    is no longer recoverable.  After the last frame the trailing manifest
    and footer are read and verified against what was actually seen --
    per-record offsets, lengths, bit counts, and CRCs -- so a sequential
    consumer gets the same integrity guarantees as a seeking one.
    ``max_bytes`` bounds the *total* bytes consumed (the whole-container
    budget of an untrusted stream).
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    if version != WIRE_V3:
        raise WireFormatError(f"wire version {version} is not a multi-frame container")
    _, codecs = _read_container_head(reader)
    observed: list[tuple[int, int, int, int, str]] = []
    while True:
        sentinel = reader.read_raw(1)[0]
        if sentinel == _MANIFEST_SENTINEL:
            break
        if sentinel != _RECORD_SENTINEL:
            raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
        if len(observed) >= _MAX_CONTAINER_ENTRIES:
            raise WireFormatError(f"container exceeds {_MAX_CONTAINER_ENTRIES} frames")
        reader.crc = 0
        start = reader.count
        frame = _read_record_v3(reader, codecs)
        yield frame
        if frame._chunks is not None:
            for _ in frame._claim_chunks():
                pass
        record_bytes = reader.count - start
        if frame._payload is None and frame._chunks is None and record_bytes == 0:
            raise WireFormatError("container frame abandoned mid-payload")
        observed.append((start, record_bytes, frame.n_bits, reader.crc, frame.codec))
    manifest_offset = reader.count
    reader.crc = 0
    entries = _read_manifest(reader, codecs)
    if len(entries) != len(observed):
        raise WireFormatError(
            f"manifest lists {len(entries)} frames, stream held {len(observed)}"
        )
    for entry, (start, record_bytes, n_bits, crc, codec) in zip(entries, observed):
        if (
            entry.offset != start
            or entry.record_bytes != record_bytes
            or entry.n_bits != n_bits
            or entry.crc != crc
            or entry.codec != codec
        ):
            raise WireFormatError(
                f"manifest entry {entry.name!r} disagrees with the stream's frames"
            )
    footer = reader.read_raw(_FOOTER_BYTES)
    if _parse_footer(footer) != manifest_offset:
        raise WireFormatError("container footer does not point at its manifest")


def iter_container_objects(
    stream: IO[bytes], *, max_bytes: int | None = None
) -> Iterator[Any]:
    """Sequential decode of a v3 container into live summary objects.

    :func:`iter_container_frames` composed with each codec's decoder:
    yields one reconstructed sketch/summary per contained frame, in
    container order, holding at most one undecoded frame at a time.
    This is the bounded-memory fan-in path ``merge_payloads`` uses when
    a shard turns out to be a whole fleet container.
    """
    for frame in iter_container_frames(stream, max_bytes=max_bytes):
        # Decode before advancing: the codec pulls the frame's lazy
        # chunks off the stream, keeping one undecoded frame resident.
        yield _decode_frame_obj(frame)


def inspect_container(
    stream: IO[bytes], *, max_bytes: int | None = None
) -> ContainerInfo:
    """Skim a v3 container without decoding any payload.

    One sequential pass (works on unseekable streams): parses the header
    and every record's header, skims stored payload bytes, and checks
    every CRC -- per-record, manifest, and footer.  Checksum mismatches
    are *reported* via ``crc_ok=False`` (mirroring :func:`inspect_frame`)
    while structural disagreement between manifest and stream raises.
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    if version != WIRE_V3:
        raise WireFormatError(f"wire version {version} is not a multi-frame container")
    meta, codecs = _read_container_head(reader)
    header_bytes = reader.count
    crc_ok = True
    observed: list[tuple[int, int, int, int]] = []
    while True:
        sentinel = reader.read_raw(1)[0]
        if sentinel == _MANIFEST_SENTINEL:
            break
        if sentinel != _RECORD_SENTINEL:
            raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
        if len(observed) >= _MAX_CONTAINER_ENTRIES:
            raise WireFormatError(f"container exceeds {_MAX_CONTAINER_ENTRIES} frames")
        reader.crc = 0
        start = reader.count
        _read_record_header_v3(reader, codecs)
        n_bits_pos = reader.count
        del n_bits_pos
        stored_len = _read_uvarint(reader)
        for _ in _iter_stored(reader, stored_len):
            pass
        (expected,) = struct.unpack(">I", reader.read_raw(4))
        crc_ok &= reader.crc == expected
        observed.append((start, reader.count - start, expected, 0))
    manifest_offset = reader.count
    reader.crc = 0
    count = _read_uvarint(reader)
    if count > _MAX_CONTAINER_ENTRIES:
        raise WireFormatError(f"container manifest declares {count} entries")
    entries: list[ManifestEntry] = []
    for _ in range(count):
        name_len = reader.read(1)[0]
        try:
            name = reader.read(name_len).decode("ascii") if name_len else ""
        except UnicodeDecodeError as exc:
            raise WireFormatError("shard name is not ASCII") from exc
        codec_index = _read_uvarint(reader)
        if codec_index >= len(codecs):
            raise WireFormatError(
                f"manifest codec index {codec_index} outside the container's "
                f"{len(codecs)}-entry codec table"
            )
        offset = _read_uvarint(reader)
        record_bytes = _read_uvarint(reader)
        n_bits = _read_uvarint(reader)
        (crc,) = struct.unpack(">I", reader.read(4))
        entries.append(
            ManifestEntry(
                name=name,
                codec=codecs[codec_index],
                codec_index=codec_index,
                offset=offset,
                record_bytes=record_bytes,
                n_bits=n_bits,
                crc=crc,
            )
        )
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    crc_ok &= reader.crc == expected
    if len(entries) != len(observed):
        raise WireFormatError(
            f"manifest lists {len(entries)} frames, stream held {len(observed)}"
        )
    for entry, (start, record_bytes, record_crc, _) in zip(entries, observed):
        if entry.offset != start or entry.record_bytes != record_bytes:
            raise WireFormatError(
                f"manifest entry {entry.name!r} disagrees with the stream's frames"
            )
        crc_ok &= entry.crc == record_crc
    footer = reader.read_raw(_FOOTER_BYTES)
    if _parse_footer(footer) != manifest_offset:
        raise WireFormatError("container footer does not point at its manifest")
    return ContainerInfo(
        version=WIRE_V3,
        meta=meta,
        codecs=codecs,
        entries=tuple(entries),
        header_bytes=header_bytes,
        manifest_offset=manifest_offset,
        container_bytes=reader.count,
        crc_ok=crc_ok,
    )


def peek_wire_version(data: bytes) -> int | None:
    """The wire version of a byte prefix, or ``None`` if not IFSK-framed."""
    if len(data) < 5 or data[: len(MAGIC)] != MAGIC:
        return None
    return data[len(MAGIC)]


def _read_frame_v3_single(reader: _CrcReader) -> Frame:
    """A v3 container holding exactly one frame, through ``read_frame``.

    Single-frame containers are how v3 flows through every frame-shaped
    channel unchanged (``dump(version=3)``, a socket ``LOAD`` body, a WAL
    record).  Zero frames or more than one raise -- multi-frame
    containers go through :class:`ContainerReader` or
    :func:`iter_container_frames`.
    """
    _, codecs = _read_container_head(reader)
    sentinel = reader.read_raw(1)[0]
    if sentinel == _MANIFEST_SENTINEL:
        raise WireFormatError("container holds no frames")
    if sentinel != _RECORD_SENTINEL:
        raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
    reader.crc = 0
    start = reader.count
    frame = _read_record_v3(reader, codecs)
    frame.payload  # noqa: B018 -- materialize: runs byte-total and CRC checks
    record_bytes = reader.count - start
    record_crc = reader.crc
    sentinel = reader.read_raw(1)[0]
    if sentinel == _RECORD_SENTINEL:
        raise WireFormatError(
            "multi-frame container: use ContainerReader or iter_container_frames"
        )
    if sentinel != _MANIFEST_SENTINEL:
        raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
    manifest_offset = reader.count
    reader.crc = 0
    entries = _read_manifest(reader, codecs)
    if len(entries) != 1:
        raise WireFormatError(
            f"manifest lists {len(entries)} frames, stream held 1"
        )
    entry = entries[0]
    if (
        entry.offset != start
        or entry.record_bytes != record_bytes
        or entry.n_bits != frame.n_bits
        or entry.crc != record_crc
    ):
        raise WireFormatError(
            f"manifest entry {entry.name!r} disagrees with the stream's frames"
        )
    footer = reader.read_raw(_FOOTER_BYTES)
    if _parse_footer(footer) != manifest_offset:
        raise WireFormatError("container footer does not point at its manifest")
    return frame


def _inspect_frame_v3_single(reader: _CrcReader) -> FrameInfo:
    """:func:`inspect_frame` for a single-frame v3 container.

    Mirrors the v1/v2 contract: the record's payload bytes are skimmed
    (never decoded) and its checksum is *reported* via ``crc_ok``, while
    structural breakage -- including a manifest that disagrees with the
    record actually present -- raises.
    """
    _, codecs = _read_container_head(reader)
    sentinel = reader.read_raw(1)[0]
    if sentinel == _MANIFEST_SENTINEL:
        raise WireFormatError("container holds no frames")
    if sentinel != _RECORD_SENTINEL:
        raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
    reader.crc = 0
    start = reader.count
    _, codec, header, n_bits, flags = _read_record_header_v3(reader, codecs)
    header_bytes = reader.count
    stored = _read_uvarint(reader)
    for _ in _iter_stored(reader, stored):
        pass
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    crc_ok = reader.crc == expected
    record_bytes = reader.count - start
    sentinel = reader.read_raw(1)[0]
    if sentinel == _RECORD_SENTINEL:
        raise WireFormatError(
            "multi-frame container: use inspect_container"
        )
    if sentinel != _MANIFEST_SENTINEL:
        raise WireFormatError(f"bad container sentinel 0x{sentinel:02x}")
    manifest_offset = reader.count
    reader.crc = 0
    entries = _read_manifest(reader, codecs)
    if len(entries) != 1:
        raise WireFormatError(f"manifest lists {len(entries)} frames, stream held 1")
    entry = entries[0]
    if (
        entry.offset != start
        or entry.record_bytes != record_bytes
        or entry.n_bits != n_bits
    ):
        raise WireFormatError(
            f"manifest entry {entry.name!r} disagrees with the stream's frames"
        )
    crc_ok = crc_ok and entry.crc == expected
    footer = reader.read_raw(_FOOTER_BYTES)
    if _parse_footer(footer) != manifest_offset:
        raise WireFormatError("container footer does not point at its manifest")
    return FrameInfo(
        codec=codec,
        version=WIRE_V3,
        params=header.params,
        extras=header.fields,
        n_bits=n_bits,
        compressed=bool(flags & _FLAG_ZLIB),
        chunked=False,
        header_bytes=header_bytes,
        stored_payload_bytes=stored,
        frame_bytes=reader.count,
        crc_ok=crc_ok,
        delta=bool(flags & _FLAG_DELTA),
    )


# ----------------------------------------------------------------------
# Frame encoding / decoding entry points (version dispatch).
# ----------------------------------------------------------------------
def encode_frame(
    codec: str,
    params: SketchParams | None,
    extras: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
    *,
    version: int | None = None,
    compress: bool = False,
) -> bytes:
    """Assemble the framed byte string for one serialized summary.

    ``version`` selects the layout (default: :func:`default_wire_version`).
    v1 output is byte-identical to every frame PR 3 ever committed.
    ``compress`` (v2 only) stores the payload as a zlib stream; the
    declared ``n_bits`` -- the charged size -- is unchanged.
    """
    if version is None:
        version = default_wire_version()
    _validate_codec_name(codec)
    if len(payload) != (n_bits + 7) // 8:
        raise WireFormatError(
            f"payload of {len(payload)} bytes disagrees with {n_bits} bits"
        )
    if version == WIRE_V1:
        if compress:
            raise WireFormatError("wire v1 frames cannot be compressed")
        return _encode_frame_v1(codec, params, extras, payload, n_bits)
    if version == WIRE_V2:
        out = io.BytesIO()
        _write_frame_v2(
            out,
            codec,
            params,
            extras,
            (payload,) if payload else (),
            n_bits,
            compress=compress,
            chunked=False,
        )
        return out.getvalue()
    if version == WIRE_V3:
        out = io.BytesIO()
        writer = ContainerWriter(out, codecs=(codec,))
        writer._add_encoded(
            "", codec, params, extras, payload, n_bits,
            compress=compress, delta=True,
        )
        writer.close()
        return out.getvalue()
    raise WireFormatError(
        f"unsupported wire version {version} (this build writes {SUPPORTED_WIRE_VERSIONS})"
    )


def read_frame(stream: IO[bytes], *, max_bytes: int | None = None) -> Frame:
    """Read exactly one frame from a binary stream, dispatching by version.

    v2 payloads stay lazy: the returned frame pulls chunks from the
    stream as its :meth:`Frame.reader` is consumed (or when
    :attr:`Frame.payload` is touched) and verifies the running CRC at the
    final chunk, so giant frames decode without materializing.  Exactly
    the frame's bytes are consumed from the stream on success.

    ``max_bytes`` caps the total bytes read for this frame (header,
    payload, and trailer together).  On an untrusted transport -- the
    sketch server's socket peers -- the cap turns a hostile frame that
    declares an enormous section into an immediate
    :class:`WireFormatError` *before* any oversized read or allocation
    is attempted; the budget also applies to the lazy chunk pulls.

    Raises
    ------
    WireFormatError
        On any malformed, truncated, corrupted, or unknown-format input,
        or when the frame would exceed ``max_bytes``.
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    if version == WIRE_V1:
        return _read_frame_v1(reader)
    if version == WIRE_V2:
        return _read_frame_v2(reader)
    if version == WIRE_V3:
        return _read_frame_v3_single(reader)
    raise WireFormatError(
        f"unsupported wire version {version} (this build reads {SUPPORTED_WIRE_VERSIONS})"
    )


def decode_frame(buf: bytes) -> Frame:
    """Parse and validate an in-memory frame produced by :func:`encode_frame`.

    The returned frame is fully materialized and CRC-verified.

    Raises
    ------
    WireFormatError
        On any malformed, truncated, corrupted, or unknown-format input,
        including trailing bytes after the frame.
    """
    stream = io.BytesIO(buf)
    frame = read_frame(stream)
    frame.payload  # noqa: B018 -- materialize: runs the byte-total and CRC checks
    if stream.read(1):
        raise WireFormatError("trailing garbage after frame")
    return frame


def inspect_frame(stream: IO[bytes], *, max_bytes: int | None = None) -> FrameInfo:
    """Read a frame's header -- and skim its checksum -- without decoding.

    Parses codec, version, params, extras, flags, and ``n_bits`` from the
    header alone, then skims the stored payload bytes (no decompression,
    no codec dispatch) to verify the trailing CRC.  A structurally
    unparseable or truncated frame raises :class:`WireFormatError`; a
    parseable frame with a wrong checksum is *reported* via
    ``crc_ok=False`` so tooling can describe the corruption.
    ``max_bytes`` bounds total byte consumption as in :func:`read_frame`.
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    compressed = chunked = False
    if version == WIRE_V1:
        codec, header, n_bits = _read_header_v1(reader)
        header_bytes = reader.count
        stored = (n_bits + 7) // 8
        for _ in _iter_stored(reader, stored):
            pass
    elif version == WIRE_V2:
        codec, header, n_bits, compressed, chunked = _read_header_v2(reader)
        header_bytes = reader.count
        if chunked:
            stored = 0
            for chunk in _iter_chunked(reader):
                stored += len(chunk)
        else:
            stored = _read_uvarint(reader)
            for _ in _iter_stored(reader, stored):
                pass
    elif version == WIRE_V3:
        return _inspect_frame_v3_single(reader)
    else:
        raise WireFormatError(
            f"unsupported wire version {version} "
            f"(this build reads {SUPPORTED_WIRE_VERSIONS})"
        )
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    return FrameInfo(
        codec=codec,
        version=version,
        params=header.params,
        extras=header.fields,
        n_bits=n_bits,
        compressed=compressed,
        chunked=chunked,
        header_bytes=header_bytes,
        stored_payload_bytes=stored,
        frame_bytes=reader.count,
        crc_ok=reader.crc == expected,
    )


# ----------------------------------------------------------------------
# Codec registry.
# ----------------------------------------------------------------------
class SketchCodec(ABC):
    """One serializer: a sketcher name plus encode/decode for its summaries.

    Codecs never hand-roll extras dicts: :meth:`encode` fills the shared
    :class:`Header` builder with the summary's public metadata and
    returns only the payload, and :meth:`decode` reads the same fields
    back through the header's typed getters.  One header implementation
    therefore serves both frame generations (JSON under v1, binary
    varint fields under v2) for all registered codecs.
    """

    #: Registry key; matches the producing sketcher's ``name`` where one exists.
    name: str = "abstract"
    #: Concrete summary class this codec round-trips.
    handles: type = object

    @abstractmethod
    def encode(self, obj: Any, header: Header) -> BitWriter | tuple[bytes, int]:
        """Fill ``header`` and serialize ``obj``'s payload.

        The payload is either a :class:`BitWriter` to be packed (or
        drained to a stream), or -- for summaries that already hold their
        canonical packed payload -- a ``(payload_bytes, n_bits)`` pair
        passed through verbatim.
        """

    @abstractmethod
    def decode(self, frame: Frame) -> Any:
        """Reconstruct a summary from a validated frame."""


_CODECS: dict[str, SketchCodec] = {}
_BY_TYPE: dict[type, SketchCodec] = {}


def register_codec(codec: SketchCodec) -> SketchCodec:
    """Add a codec to the registry (keyed by sketcher name and by type)."""
    if codec.name in _CODECS:
        raise WireFormatError(f"codec {codec.name!r} already registered")
    if codec.handles in _BY_TYPE:
        raise WireFormatError(f"type {codec.handles.__name__} already has a codec")
    _CODECS[codec.name] = codec
    _BY_TYPE[codec.handles] = codec
    return codec


def codec_names() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_CODECS))


def codec_for(obj: Any) -> SketchCodec:
    """The codec handling ``obj``'s concrete type.

    Raises
    ------
    WireFormatError
        If no registered codec handles the type.
    """
    codec = _BY_TYPE.get(type(obj))
    if codec is None:
        raise WireFormatError(f"no codec registered for {type(obj).__name__}")
    return codec


def _encoded_payload(payload: BitWriter | tuple[bytes, int]) -> tuple[bytes, int]:
    if isinstance(payload, BitWriter):
        return payload.getvalue(), payload.n_bits
    return payload


def dump(obj: Any, *, version: int | None = None, compress: bool = False) -> bytes:
    """Serialize a sketch or streaming summary to its framed bit string.

    ``version`` selects the frame layout (default
    :func:`default_wire_version`); ``compress`` stores a zlib payload
    under v2 while the charged ``n_bits`` stays the uncompressed count.
    """
    codec = codec_for(obj)
    header = Header()
    payload = codec.encode(obj, header)
    buf, n_bits = _encoded_payload(payload)
    return encode_frame(
        codec.name, header.params, header.fields, buf, n_bits,
        version=version, compress=compress,
    )


def dump_to(
    obj: Any,
    stream: IO[bytes],
    *,
    version: int | None = None,
    compress: bool = False,
    chunked: bool | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> int:
    """Serialize straight into a binary stream; returns bytes written.

    Under v2 the payload is drained in ``chunk_bytes`` windows
    (:meth:`BitWriter.iter_packed`), so the full packed byte string is
    never materialized.  ``chunked=None`` picks the layout automatically:
    chunked frames whenever the payload is compressed (its stored length
    is unknown up front) or larger than one window, the compact
    varint-length layout otherwise.
    """
    if version is None:
        version = default_wire_version()
    codec = codec_for(obj)
    header = Header()
    payload = codec.encode(obj, header)
    if version == WIRE_V1:
        if compress or chunked:
            raise WireFormatError("wire v1 frames are neither compressed nor chunked")
        buf, n_bits = _encoded_payload(payload)
        if len(buf) != (n_bits + 7) // 8:
            raise WireFormatError(
                f"payload of {len(buf)} bytes disagrees with {n_bits} bits"
            )
        data = _encode_frame_v1(codec.name, header.params, header.fields, buf, n_bits)
        stream.write(data)
        return len(data)
    if version == WIRE_V3:
        if chunked:
            raise WireFormatError(
                "wire v3 records are not chunked; containers stream whole records"
            )
        buf, n_bits = _encoded_payload(payload)
        writer = ContainerWriter(stream, codecs=(codec.name,))
        writer._add_encoded(
            "", codec.name, header.params, header.fields, buf, n_bits,
            compress=compress, delta=True,
        )
        writer.close()
        return writer.bytes_written
    if version != WIRE_V2:
        raise WireFormatError(
            f"unsupported wire version {version} "
            f"(this build writes {SUPPORTED_WIRE_VERSIONS})"
        )
    if isinstance(payload, BitWriter):
        n_bits = payload.n_bits
        payload_bytes = (n_bits + 7) // 8
        chunks: Iterable[bytes] = payload.iter_packed(chunk_bytes)
    else:
        buf, n_bits = payload
        if len(buf) != (n_bits + 7) // 8:
            raise WireFormatError(
                f"payload of {len(buf)} bytes disagrees with {n_bits} bits"
            )
        payload_bytes = len(buf)
        view = memoryview(buf)
        chunks = (
            bytes(view[start : start + chunk_bytes])
            for start in range(0, len(view), chunk_bytes)
        )
    if chunked is None:
        chunked = compress or payload_bytes > chunk_bytes
    return _write_frame_v2(
        stream,
        codec.name,
        header.params,
        header.fields,
        chunks,
        n_bits,
        compress=compress,
        chunked=chunked,
    )


def _decode_frame_obj(frame: Frame) -> Any:
    codec = _CODECS.get(frame.codec)
    if codec is None:
        raise WireFormatError(f"unknown codec {frame.codec!r}")
    try:
        return codec.decode(frame)
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(
            f"codec {frame.codec!r} rejected the frame: {exc}"
        ) from exc


def load(buf: bytes) -> Any:
    """Reconstruct a sketch or streaming summary from :func:`dump` output.

    Dispatches by the frame's version byte, so v1 and v2 frames decode
    through the same entry point.  Every decode failure surfaces as
    :class:`WireFormatError`: codec decoders hand untrusted header fields
    to summary constructors, whose own validation errors (``StreamError``,
    ``ParameterError``, ...) are re-raised here as malformed-frame errors
    so callers can rely on one exception type for untrusted input.
    """
    return _decode_frame_obj(decode_frame(buf))


def load_from(stream: IO[bytes], *, max_bytes: int | None = None) -> Any:
    """:func:`load` from a binary stream (one frame consumed exactly).

    Chunked v2 frames decode windowed: payload bytes flow from the
    stream into the codec's bit reader without materializing, and the
    trailing CRC is verified when the final chunk is consumed.
    ``max_bytes`` bounds the frame's total byte consumption, as in
    :func:`read_frame` -- the knob untrusted-transport callers (the
    sketch server) use to reject oversized frames up front.
    """
    return _decode_frame_obj(read_frame(stream, max_bytes=max_bytes))


def load_as(expected: type, buf: bytes) -> Any:
    """:func:`load` plus a type check: the shared ``from_bytes`` body.

    Raises
    ------
    WireFormatError
        If the frame is malformed, corrupted, or decodes to something
        that is not an ``expected`` instance.
    """
    obj = load(buf)
    if not isinstance(obj, expected):
        raise WireFormatError(
            f"frame decodes to {type(obj).__name__}, not a {expected.__name__}"
        )
    return obj


def payload_size_bits(obj: Any) -> int:
    """Exact bit length of ``obj``'s serialized payload (the measured size).

    By the registry contract this equals ``obj.size_in_bits()``; the test
    suite asserts the identity for every codec, under both frame versions
    and with compression on and off (the stored byte count may shrink,
    the charged bit count never does).
    """
    codec = codec_for(obj)
    payload = codec.encode(obj, Header())
    return _encoded_payload(payload)[1]


# ----------------------------------------------------------------------
# Core sketch codecs (Definitions 6-8 and the Conclusion's extension).
# ----------------------------------------------------------------------
class _ReleaseDbCodec(SketchCodec):
    """RELEASE-DB: the payload is the packed database, ``n * d`` bits."""

    name = "release-db"
    handles = ReleaseDbSketch

    def encode(self, obj: ReleaseDbSketch, header: Header):
        db = obj.database
        header.set_params(obj.params).set("n", db.n).set("d", db.d)
        writer = BitWriter()
        writer.write_bits(db.rows.reshape(-1))
        return writer

    def decode(self, frame: Frame) -> ReleaseDbSketch:
        _require(frame.params is not None, "release-db frame needs params")
        n, d = frame.header.get_int("n"), frame.header.get_int("d")
        _require(n >= 1 and d >= 1, "release-db shape must be positive")
        _require(frame.n_bits == n * d, "release-db payload must be n*d bits")
        rows = frame.reader().read_bits(n * d).reshape(n, d)
        return ReleaseDbSketch(frame.params, BinaryDatabase(rows))


class _ReleaseAnswersCodec(SketchCodec):
    """RELEASE-ANSWERS: the payload is the stored answer table itself."""

    name = "release-answers"
    handles = ReleaseAnswersSketch

    def encode(self, obj: ReleaseAnswersSketch, header: Header):
        # The sketch already holds its canonical packed payload; pass it
        # through verbatim instead of an unpack/repack round trip.
        header.set_params(obj.params).set("indicator", obj.stores_indicator_bits)
        return (obj.payload, obj.size_in_bits())

    def decode(self, frame: Frame) -> ReleaseAnswersSketch:
        from .db.serialize import frequency_bits

        _require(frame.params is not None, "release-answers frame needs params")
        indicator = frame.header.get_bool("indicator")
        per_answer = 1 if indicator else frequency_bits(frame.params.epsilon)
        _require(
            frame.n_bits == frame.params.num_itemsets * per_answer,
            "release-answers payload must hold exactly C(d,k) answers",
        )
        # The sketch's own _decode builds the strict BitReader, which
        # enforces the length/padding invariants.
        return ReleaseAnswersSketch(frame.params, frame.payload, frame.n_bits, indicator)


class _SubsampleCodec(SketchCodec):
    """SUBSAMPLE: the payload is the packed sample, ``s * d`` bits."""

    name = "subsample"
    handles = SubsampleSketch

    def encode(self, obj: SubsampleSketch, header: Header):
        sample = obj.sample
        header.set_params(obj.params).set("s", sample.n).set("d", sample.d)
        writer = BitWriter()
        writer.write_bits(sample.rows.reshape(-1))
        return writer

    def decode(self, frame: Frame) -> SubsampleSketch:
        _require(frame.params is not None, "subsample frame needs params")
        s, d = frame.header.get_int("s"), frame.header.get_int("d")
        _require(s >= 1 and d >= 1, "subsample shape must be positive")
        _require(frame.n_bits == s * d, "subsample payload must be s*d bits")
        rows = frame.reader().read_bits(s * d).reshape(s, d)
        return SubsampleSketch(frame.params, BinaryDatabase(rows))


class _ImportanceCodec(SketchCodec):
    """Importance sampling: rows plus 32-bit sampling probabilities.

    The sketch itself quantizes probabilities to IEEE float32 at
    construction (that is what the 32-bit charge buys), so storing the raw
    bit patterns reproduces the Horvitz-Thompson answers exactly.
    """

    name = "importance-sample"
    handles = ImportanceSampleSketch

    def encode(self, obj: ImportanceSampleSketch, header: Header):
        rows, probs = obj.rows, obj.probabilities
        header.set_params(obj.params)
        header.set("s", int(rows.shape[0])).set("d", int(rows.shape[1]))
        header.set("n_source", obj.n_source_rows)
        writer = BitWriter()
        writer.write_bits(rows.reshape(-1))
        writer.write_uints(probs.view(np.uint32).astype(np.uint64), PROBABILITY_BITS)
        return writer

    def decode(self, frame: Frame) -> ImportanceSampleSketch:
        _require(frame.params is not None, "importance-sample frame needs params")
        s, d = frame.header.get_int("s"), frame.header.get_int("d")
        n_source = frame.header.get_int("n_source")
        _require(s >= 1 and d >= 1, "importance-sample shape must be positive")
        _require(
            frame.n_bits == s * (d + PROBABILITY_BITS),
            "importance-sample payload must be s*(d+32) bits",
        )
        reader = frame.reader()
        rows = reader.read_bits(s * d).reshape(s, d)
        codes = reader.read_uints(s, PROBABILITY_BITS)
        probs = codes.astype(np.uint32).view(np.float32)
        return ImportanceSampleSketch(frame.params, rows, probs, n_source)


# ----------------------------------------------------------------------
# Streaming summary codecs (the distributed-ingest shards).
# ----------------------------------------------------------------------
class _CountMinCodec(SketchCodec):
    """Count-Min: hash coefficients then the counter table, 64 bits each."""

    name = "count-min"
    handles = CountMinSketch

    def encode(self, obj: CountMinSketch, header: Header):
        header.set("universe", obj.universe).set("width", obj.width)
        header.set("depth", obj.depth).set("conservative", obj.conservative)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        writer.write_uints(obj._a.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._b.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._table.reshape(-1).astype(np.uint64), COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> CountMinSketch:
        universe = frame.header.get_int("universe")
        width, depth = frame.header.get_int("width"), frame.header.get_int("depth")
        conservative = frame.header.get_bool("conservative")
        _require(
            frame.n_bits == (depth * width + 2 * depth) * COUNT_BITS,
            "count-min payload length disagrees with width/depth",
        )
        reader = frame.reader()
        out = CountMinSketch(universe, width, depth, conservative=conservative, rng=0)
        out._a = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._b = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._table = (
            reader.read_uints(depth * width, COUNT_BITS).astype(np.int64).reshape(depth, width)
        )
        out.stream_length = frame.header.get_int("stream_length")
        return out


def _encode_slots(
    writer: BitWriter, slots: list[tuple[int, ...]], n_slots: int, widths: tuple[int, ...]
) -> None:
    """Write ``n_slots`` fixed-width records, padding with all-zero records.

    Tracked records are sorted by their first field (the item id) so the
    payload is canonical; zero padding keeps the serialized size equal to
    the summary's slot-capacity accounting.  Records are striped
    field-major (all first fields, then all second fields, ...) so each
    field is one vectorized ``write_uints`` call.
    """
    ordered = sorted(slots)
    for field_idx, width in enumerate(widths):
        column = [record[field_idx] for record in ordered]
        column += [0] * (n_slots - len(ordered))
        writer.write_uints(np.asarray(column, dtype=np.uint64), width)


def _decode_slots(
    reader: BitReader, n_slots: int, widths: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Inverse of :func:`_encode_slots`; drops all-zero padding records."""
    columns = [reader.read_uints(n_slots, width).astype(np.int64) for width in widths]
    records = list(zip(*(col.tolist() for col in columns)))
    return [record for record in records if any(record)]


class _MisraGriesCodec(SketchCodec):
    """Misra-Gries: ``k`` slots of (id, count); free slots zeroed."""

    name = "misra-gries"
    handles = MisraGries

    def encode(self, obj: MisraGries, header: Header):
        header.set("universe", obj.universe).set("k", obj.k)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        _encode_slots(
            writer, list(obj._counters.items()), obj.k, (id_bits, COUNT_BITS)
        )
        return writer

    def decode(self, frame: Frame) -> MisraGries:
        universe = frame.header.get_int("universe")
        k = frame.header.get_int("k")
        out = MisraGries(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + COUNT_BITS),
            "misra-gries payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS))
        out._counters = {item: count for item, count in records if count > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _SpaceSavingCodec(SketchCodec):
    """SpaceSaving: ``k`` slots of (id, count, error); free slots zeroed."""

    name = "space-saving"
    handles = SpaceSaving

    def encode(self, obj: SpaceSaving, header: Header):
        header.set("universe", obj.universe).set("k", obj.k)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [
            (item, count, obj._errors.get(item, 0))
            for item, count in obj._counts.items()
        ]
        _encode_slots(writer, slots, obj.k, (id_bits, COUNT_BITS, COUNT_BITS))
        return writer

    def decode(self, frame: Frame) -> SpaceSaving:
        universe = frame.header.get_int("universe")
        k = frame.header.get_int("k")
        out = SpaceSaving(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + 2 * COUNT_BITS),
            "space-saving payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS, COUNT_BITS))
        out._counts = {item: count for item, count, _ in records if count > 0}
        out._errors = {item: err for item, count, err in records if count > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _LossyCountingCodec(SketchCodec):
    """Lossy counting: one (id, count, delta) record per held entry."""

    name = "lossy-counting"
    handles = LossyCounting

    def encode(self, obj: LossyCounting, header: Header):
        header.set("universe", obj.universe).set("epsilon", obj.epsilon)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [(item, c, d) for item, (c, d) in obj._entries.items()]
        # The accounting charges at least one entry even when empty.
        _encode_slots(
            writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS, COUNT_BITS)
        )
        return writer

    def decode(self, frame: Frame) -> LossyCounting:
        universe = frame.header.get_int("universe")
        epsilon = frame.header.get_float("epsilon")
        out = LossyCounting(universe, epsilon)
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "lossy-counting payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS, COUNT_BITS))
        out._entries = {item: (c, d) for item, c, d in records if c > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _StickySamplingCodec(SketchCodec):
    """Sticky sampling: one (id, count) record per tracked entry.

    The sampling RNG state is not part of the summary's accounting; a
    deserialized summary answers queries bit-identically and can continue
    streaming, but its future sampling coin flips are fresh randomness.
    """

    name = "sticky-sampling"
    handles = StickySampling

    def encode(self, obj: StickySampling, header: Header):
        header.set("universe", obj.universe).set("epsilon", obj.epsilon)
        header.set("threshold", obj.threshold).set("delta", obj.delta)
        header.set("rate", obj.sampling_rate).set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = list(obj._counts.items())
        _encode_slots(writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS))
        return writer

    def decode(self, frame: Frame) -> StickySampling:
        universe = frame.header.get_int("universe")
        out = StickySampling(
            universe,
            frame.header.get_float("epsilon"),
            frame.header.get_float("threshold"),
            frame.header.get_float("delta"),
        )
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "sticky-sampling payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS))
        out._counts = {item: count for item, count in records if count > 0}
        out._rate = frame.header.get_int("rate")
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _ReservoirCodec(SketchCodec):
    """Item reservoir: ``size`` id slots plus the stream-length counter."""

    name = "reservoir"
    handles = ReservoirSample

    def encode(self, obj: ReservoirSample, header: Header):
        sample = obj.sample
        header.set("universe", obj.universe).set("size", obj.size)
        header.set("filled", len(sample))
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        ids = sample + [0] * (obj.size - len(sample))
        writer.write_uints(np.asarray(ids, dtype=np.uint64), id_bits)
        writer.write_uint(obj.stream_length, COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> ReservoirSample:
        universe = frame.header.get_int("universe")
        size = frame.header.get_int("size")
        filled = frame.header.get_int("filled")
        out = ReservoirSample(universe, size, rng=0)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == size * id_bits + COUNT_BITS,
            "reservoir payload length disagrees with size",
        )
        _require(0 <= filled <= size, "reservoir fill count out of range")
        reader = frame.reader()
        ids = reader.read_uints(size, id_bits).astype(int).tolist()
        out._reservoir = ids[:filled]
        out.stream_length = reader.read_uint(COUNT_BITS)
        return out


class _RowReservoirCodec(SketchCodec):
    """Row reservoir: ``size`` row slots of ``d`` bits each (the shard form).

    This is the distributed-SUBSAMPLE transport: sketch rows where the data
    lives, :func:`dump` the reservoir, ship it, :func:`load` and merge with
    :func:`repro.streaming.merge.merge_row_reservoirs`.
    """

    name = "row-reservoir"
    handles = RowReservoir

    def encode(self, obj: RowReservoir, header: Header):
        filled = len(obj._words)
        header.set("d", obj.d).set("size", obj.size).set("filled", filled)
        writer = BitWriter()
        if filled:
            words = np.array(obj._words, dtype=np.uint64)
            rows = PackedRows.from_words(words, obj.d).to_matrix()
            writer.write_bits(rows.reshape(-1))
        if obj.size > filled:
            writer.write_bits(np.zeros((obj.size - filled) * obj.d, dtype=bool))
        # rows_seen is summary state (the merge rule weights by it), so it
        # rides in the charged payload, not the header.
        writer.write_uint(obj.rows_seen, COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> RowReservoir:
        d, size = frame.header.get_int("d"), frame.header.get_int("size")
        filled = frame.header.get_int("filled")
        out = RowReservoir(d, size, rng=0)
        _require(
            frame.n_bits == size * d + COUNT_BITS,
            "row-reservoir payload must be size*d + 64 bits",
        )
        _require(0 <= filled <= size, "row-reservoir fill count out of range")
        reader = frame.reader()
        rows = reader.read_bits(size * d).reshape(size, d)
        if filled:
            out._words = list(pack_rows(rows[:filled]))
        out.rows_seen = reader.read_uint(COUNT_BITS)
        return out


class _ItemsetMinerCodec(SketchCodec):
    """Streaming itemset miner: (itemset, count, delta) per tracked entry.

    Each itemset is written as exactly ``max_size`` item fields of
    ``ceil(log2 d)`` bits (the accounting's id charge); shorter itemsets
    pad by repeating their last item, which is unambiguous because real
    itemsets are strictly increasing.
    """

    name = "itemset-miner"
    handles = StreamingItemsetMiner

    def encode(self, obj: StreamingItemsetMiner, header: Header):
        import math

        header.set("d", obj.d).set("epsilon", obj.epsilon)
        header.set("max_size", obj.max_size).set("max_row_items", obj.max_row_items)
        header.set("rows_seen", obj.rows_seen)
        writer = BitWriter()
        item_bits = max(1, math.ceil(math.log2(max(obj.d, 2))))
        entries = sorted(
            (itemset.items, count, delta)
            for itemset, (count, delta) in obj._entries.items()
        )
        slots = []
        for items, count, delta in entries:
            padded = list(items) + [items[-1]] * (obj.max_size - len(items))
            slots.append((*padded, count, delta))
        n_slots = max(1, len(slots))
        widths = (item_bits,) * obj.max_size + (COUNT_BITS, COUNT_BITS)
        _encode_slots(writer, slots, n_slots, widths)
        return writer

    def decode(self, frame: Frame) -> StreamingItemsetMiner:
        import math

        from .db.itemset import Itemset

        d = frame.header.get_int("d")
        max_size = frame.header.get_int("max_size")
        out = StreamingItemsetMiner(
            d,
            frame.header.get_float("epsilon"),
            max_size,
            max_row_items=frame.header.get_int("max_row_items"),
        )
        item_bits = max(1, math.ceil(math.log2(max(d, 2))))
        entry_bits = max_size * item_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "itemset-miner payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        widths = (item_bits,) * max_size + (COUNT_BITS, COUNT_BITS)
        entries: dict[Any, tuple[int, int]] = {}
        for record in _decode_slots(frame.reader(), n_slots, widths):
            items, count, delta = record[:max_size], record[-2], record[-1]
            if count <= 0:
                continue
            kept = [items[0]]
            for item in items[1:]:
                if item <= kept[-1]:
                    break  # padding: repeats of the last real item
                kept.append(item)
            _require(kept[-1] < d, "itemset-miner entry has out-of-range item")
            entries[Itemset(kept)] = (count, delta)
        out._entries = entries
        out.rows_seen = frame.header.get_int("rows_seen")
        return out


for _codec in (
    _ReleaseDbCodec(),
    _ReleaseAnswersCodec(),
    _SubsampleCodec(),
    _ImportanceCodec(),
    _CountMinCodec(),
    _MisraGriesCodec(),
    _SpaceSavingCodec(),
    _LossyCountingCodec(),
    _StickySamplingCodec(),
    _ReservoirCodec(),
    _RowReservoirCodec(),
    _ItemsetMinerCodec(),
):
    register_codec(_codec)
