"""Versioned wire format: sketches become real bit strings.

The paper models a sketch as a pair ``(S, Q)``: ``S`` maps a database to a
*bit string* and ``Q`` answers queries from that string alone.  This module
makes the split literal.  Every sketch and streaming summary serializes to a
framed payload via :func:`dump` and is reconstructed -- in another process,
on another machine -- via :func:`load`, answering queries bit-identically to
the original object.  The payload length *is* the size the lower bounds are
compared against: for every registered codec,
``obj.size_in_bits() == n_bits`` of the encoded payload, exactly.

Frame layout (all multi-byte header fields big-endian)::

    magic      4 bytes   b"IFSK"
    version    u8        wire-format version (currently 1)
    codec      u8 + n    length-prefixed ASCII codec name
    has_params u8        1 if a SketchParams block follows
    params     32 bytes  n u64, d u32, k u32, epsilon f64, delta f64
    extras     u32 + n   length-prefixed canonical JSON (codec metadata)
    n_bits     u64       exact payload length in bits
    payload    bytes     ceil(n_bits / 8) bytes, zero padded
    crc32      u32       CRC-32 of every preceding byte

The *payload* carries exactly the bits the sketch's size accounting
charges; the header carries only public parameters (shapes, universe
sizes, stream lengths, hash-family metadata) in the same spirit as
:mod:`repro.db.bitmatrix`'s convention that a matrix's shape is public
metadata, not payload.  Decoding is strict: bad magic, unknown codec or
version, truncated or oversized buffers, checksum mismatches, misdeclared
bit counts, and nonzero padding all raise
:class:`~repro.errors.WireFormatError`.

Codecs are registered per *sketcher name* (``release-db``, ``subsample``,
...) and dispatch by concrete summary type, so
:class:`~repro.core.hybrid.BestOfNaiveSketcher` -- whose output is always
one of the three naive sketch types -- round-trips through whichever codec
matches the sketch it actually built.
"""

from __future__ import annotations

import json
import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from .core.importance import PROBABILITY_BITS, ImportanceSampleSketch
from .core.release_answers import ReleaseAnswersSketch
from .core.release_db import ReleaseDbSketch
from .core.subsample import SubsampleSketch
from .db.database import BinaryDatabase
from .db.packed import PackedRows, pack_rows
from .db.serialize import BitReader, BitWriter
from .errors import ReproError, WireFormatError
from .params import SketchParams
from .streaming.base import COUNT_BITS, StreamSummary, item_id_bits
from .streaming.count_min import CountMinSketch
from .streaming.itemset_stream import StreamingItemsetMiner
from .streaming.lossy_counting import LossyCounting
from .streaming.misra_gries import MisraGries
from .streaming.reservoir import ReservoirSample, RowReservoir
from .streaming.space_saving import SpaceSaving
from .streaming.sticky_sampling import StickySampling

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "Frame",
    "SketchCodec",
    "register_codec",
    "codec_names",
    "codec_for",
    "encode_frame",
    "decode_frame",
    "dump",
    "load",
    "load_as",
    "payload_size_bits",
]

MAGIC = b"IFSK"
WIRE_VERSION = 1

_PARAMS_STRUCT = struct.Struct(">QIIdd")


@dataclass(frozen=True)
class Frame:
    """A decoded wire frame: codec id, public metadata, and the payload."""

    codec: str
    params: SketchParams | None
    extras: Mapping[str, Any]
    payload: bytes
    n_bits: int

    def reader(self) -> BitReader:
        """A strict bit reader over the payload (validates length/padding)."""
        return BitReader(self.payload, self.n_bits)


# ----------------------------------------------------------------------
# Frame encoding / decoding.
# ----------------------------------------------------------------------
def encode_frame(
    codec: str,
    params: SketchParams | None,
    extras: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
) -> bytes:
    """Assemble the framed byte string for one serialized summary."""
    name = codec.encode("ascii")
    if not 1 <= len(name) <= 255:
        raise WireFormatError(f"codec name {codec!r} must be 1..255 ASCII bytes")
    if len(payload) != (n_bits + 7) // 8:
        raise WireFormatError(
            f"payload of {len(payload)} bytes disagrees with {n_bits} bits"
        )
    parts = [MAGIC, bytes([WIRE_VERSION]), bytes([len(name)]), name]
    if params is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(
            _PARAMS_STRUCT.pack(params.n, params.d, params.k, params.epsilon, params.delta)
        )
    blob = json.dumps(dict(extras), sort_keys=True, separators=(",", ":")).encode()
    parts.append(struct.pack(">I", len(blob)))
    parts.append(blob)
    parts.append(struct.pack(">Q", n_bits))
    parts.append(payload)
    body = b"".join(parts)
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


def decode_frame(buf: bytes) -> Frame:
    """Parse and validate a frame produced by :func:`encode_frame`.

    Raises
    ------
    WireFormatError
        On any malformed, truncated, corrupted, or unknown-format input.
    """
    if len(buf) < len(MAGIC) + 1 + 1 + 1 + 4 + 8 + 4:
        raise WireFormatError(f"buffer of {len(buf)} bytes is too short for a frame")
    if buf[: len(MAGIC)] != MAGIC:
        raise WireFormatError(
            f"bad magic {buf[:len(MAGIC)]!r}: not a sketch frame"
        )
    body, (crc,) = buf[:-4], struct.unpack(">I", buf[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WireFormatError("checksum mismatch: frame corrupted in transit")
    pos = len(MAGIC)
    version = body[pos]
    pos += 1
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build reads {WIRE_VERSION})"
        )
    name_len = body[pos]
    pos += 1
    if pos + name_len > len(body):
        raise WireFormatError("truncated codec name")
    try:
        codec = body[pos : pos + name_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError("codec name is not ASCII") from exc
    pos += name_len
    if pos >= len(body):
        raise WireFormatError("truncated frame: missing params flag")
    has_params = body[pos]
    pos += 1
    params: SketchParams | None = None
    if has_params == 1:
        if pos + _PARAMS_STRUCT.size > len(body):
            raise WireFormatError("truncated params block")
        n, d, k, epsilon, delta = _PARAMS_STRUCT.unpack_from(body, pos)
        pos += _PARAMS_STRUCT.size
        try:
            params = SketchParams(n=n, d=d, k=k, epsilon=epsilon, delta=delta)
        except Exception as exc:
            raise WireFormatError(f"invalid params block: {exc}") from exc
    elif has_params != 0:
        raise WireFormatError(f"params flag must be 0 or 1, got {has_params}")
    if pos + 4 > len(body):
        raise WireFormatError("truncated extras length")
    (extras_len,) = struct.unpack_from(">I", body, pos)
    pos += 4
    if pos + extras_len > len(body):
        raise WireFormatError("truncated extras block")
    try:
        extras = json.loads(body[pos : pos + extras_len].decode()) if extras_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"invalid extras block: {exc}") from exc
    if not isinstance(extras, dict):
        raise WireFormatError("extras block must decode to an object")
    pos += extras_len
    if pos + 8 > len(body):
        raise WireFormatError("truncated payload length")
    (n_bits,) = struct.unpack_from(">Q", body, pos)
    pos += 8
    payload = body[pos:]
    if len(payload) != (n_bits + 7) // 8:
        raise WireFormatError(
            f"payload of {len(payload)} bytes disagrees with declared {n_bits} bits"
        )
    return Frame(codec=codec, params=params, extras=extras, payload=payload, n_bits=n_bits)


# ----------------------------------------------------------------------
# Codec registry.
# ----------------------------------------------------------------------
class SketchCodec(ABC):
    """One serializer: a sketcher name plus encode/decode for its summaries."""

    #: Registry key; matches the producing sketcher's ``name`` where one exists.
    name: str = "abstract"
    #: Concrete summary class this codec round-trips.
    handles: type = object

    @abstractmethod
    def encode(
        self, obj: Any
    ) -> tuple[SketchParams | None, dict[str, Any], BitWriter | tuple[bytes, int]]:
        """Serialize ``obj`` into (params, extras, payload).

        The payload is either a :class:`BitWriter` to be packed, or --
        for summaries that already hold their canonical packed payload --
        a ``(payload_bytes, n_bits)`` pair passed through verbatim.
        """

    @abstractmethod
    def decode(self, frame: Frame) -> Any:
        """Reconstruct a summary from a validated frame."""


_CODECS: dict[str, SketchCodec] = {}
_BY_TYPE: dict[type, SketchCodec] = {}


def register_codec(codec: SketchCodec) -> SketchCodec:
    """Add a codec to the registry (keyed by sketcher name and by type)."""
    if codec.name in _CODECS:
        raise WireFormatError(f"codec {codec.name!r} already registered")
    if codec.handles in _BY_TYPE:
        raise WireFormatError(f"type {codec.handles.__name__} already has a codec")
    _CODECS[codec.name] = codec
    _BY_TYPE[codec.handles] = codec
    return codec


def codec_names() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_CODECS))


def codec_for(obj: Any) -> SketchCodec:
    """The codec handling ``obj``'s concrete type.

    Raises
    ------
    WireFormatError
        If no registered codec handles the type.
    """
    codec = _BY_TYPE.get(type(obj))
    if codec is None:
        raise WireFormatError(f"no codec registered for {type(obj).__name__}")
    return codec


def _encoded_payload(payload: BitWriter | tuple[bytes, int]) -> tuple[bytes, int]:
    if isinstance(payload, BitWriter):
        return payload.getvalue(), payload.n_bits
    return payload


def dump(obj: Any) -> bytes:
    """Serialize a sketch or streaming summary to its framed bit string."""
    codec = codec_for(obj)
    params, extras, payload = codec.encode(obj)
    buf, n_bits = _encoded_payload(payload)
    return encode_frame(codec.name, params, extras, buf, n_bits)


def load(buf: bytes) -> Any:
    """Reconstruct a sketch or streaming summary from :func:`dump` output.

    Every decode failure surfaces as :class:`WireFormatError`: codec
    decoders hand untrusted header fields to summary constructors, whose
    own validation errors (``StreamError``, ``ParameterError``, ...) are
    re-raised here as malformed-frame errors so callers can rely on one
    exception type for untrusted input.
    """
    frame = decode_frame(buf)
    codec = _CODECS.get(frame.codec)
    if codec is None:
        raise WireFormatError(f"unknown codec {frame.codec!r}")
    try:
        return codec.decode(frame)
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(
            f"codec {frame.codec!r} rejected the frame: {exc}"
        ) from exc


def load_as(expected: type, buf: bytes) -> Any:
    """:func:`load` plus a type check: the shared ``from_bytes`` body.

    Raises
    ------
    WireFormatError
        If the frame is malformed, corrupted, or decodes to something
        that is not an ``expected`` instance.
    """
    obj = load(buf)
    if not isinstance(obj, expected):
        raise WireFormatError(
            f"frame decodes to {type(obj).__name__}, not a {expected.__name__}"
        )
    return obj


def payload_size_bits(obj: Any) -> int:
    """Exact bit length of ``obj``'s serialized payload (the measured size).

    By the registry contract this equals ``obj.size_in_bits()``; the test
    suite asserts the identity for every codec.
    """
    codec = codec_for(obj)
    _, _, payload = codec.encode(obj)
    return _encoded_payload(payload)[1]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


def _extra(frame: Frame, key: str, kind: type) -> Any:
    value = frame.extras.get(key)
    _require(
        value is not None, f"codec {frame.codec!r} frame is missing extra {key!r}"
    )
    if kind is float:
        _require(
            isinstance(value, (int, float)), f"extra {key!r} must be a number"
        )
        return float(value)
    _require(isinstance(value, kind), f"extra {key!r} must be {kind.__name__}")
    return value


# ----------------------------------------------------------------------
# Core sketch codecs (Definitions 6-8 and the Conclusion's extension).
# ----------------------------------------------------------------------
class _ReleaseDbCodec(SketchCodec):
    """RELEASE-DB: the payload is the packed database, ``n * d`` bits."""

    name = "release-db"
    handles = ReleaseDbSketch

    def encode(self, obj: ReleaseDbSketch):
        db = obj.database
        writer = BitWriter()
        writer.write_bits(db.rows.reshape(-1))
        return obj.params, {"n": db.n, "d": db.d}, writer

    def decode(self, frame: Frame) -> ReleaseDbSketch:
        _require(frame.params is not None, "release-db frame needs params")
        n, d = _extra(frame, "n", int), _extra(frame, "d", int)
        _require(n >= 1 and d >= 1, "release-db shape must be positive")
        _require(frame.n_bits == n * d, "release-db payload must be n*d bits")
        rows = frame.reader().read_bits(n * d).reshape(n, d)
        return ReleaseDbSketch(frame.params, BinaryDatabase(rows))


class _ReleaseAnswersCodec(SketchCodec):
    """RELEASE-ANSWERS: the payload is the stored answer table itself."""

    name = "release-answers"
    handles = ReleaseAnswersSketch

    def encode(self, obj: ReleaseAnswersSketch):
        # The sketch already holds its canonical packed payload; pass it
        # through verbatim instead of an unpack/repack round trip.
        extras = {"indicator": obj.stores_indicator_bits}
        return obj.params, extras, (obj.payload, obj.size_in_bits())

    def decode(self, frame: Frame) -> ReleaseAnswersSketch:
        from .db.serialize import frequency_bits

        _require(frame.params is not None, "release-answers frame needs params")
        indicator = _extra(frame, "indicator", bool)
        per_answer = 1 if indicator else frequency_bits(frame.params.epsilon)
        _require(
            frame.n_bits == frame.params.num_itemsets * per_answer,
            "release-answers payload must hold exactly C(d,k) answers",
        )
        # The sketch's own _decode builds the strict BitReader, which
        # enforces the length/padding invariants.
        return ReleaseAnswersSketch(frame.params, frame.payload, frame.n_bits, indicator)


class _SubsampleCodec(SketchCodec):
    """SUBSAMPLE: the payload is the packed sample, ``s * d`` bits."""

    name = "subsample"
    handles = SubsampleSketch

    def encode(self, obj: SubsampleSketch):
        sample = obj.sample
        writer = BitWriter()
        writer.write_bits(sample.rows.reshape(-1))
        return obj.params, {"s": sample.n, "d": sample.d}, writer

    def decode(self, frame: Frame) -> SubsampleSketch:
        _require(frame.params is not None, "subsample frame needs params")
        s, d = _extra(frame, "s", int), _extra(frame, "d", int)
        _require(s >= 1 and d >= 1, "subsample shape must be positive")
        _require(frame.n_bits == s * d, "subsample payload must be s*d bits")
        rows = frame.reader().read_bits(s * d).reshape(s, d)
        return SubsampleSketch(frame.params, BinaryDatabase(rows))


class _ImportanceCodec(SketchCodec):
    """Importance sampling: rows plus 32-bit sampling probabilities.

    The sketch itself quantizes probabilities to IEEE float32 at
    construction (that is what the 32-bit charge buys), so storing the raw
    bit patterns reproduces the Horvitz-Thompson answers exactly.
    """

    name = "importance-sample"
    handles = ImportanceSampleSketch

    def encode(self, obj: ImportanceSampleSketch):
        rows, probs = obj.rows, obj.probabilities
        writer = BitWriter()
        writer.write_bits(rows.reshape(-1))
        writer.write_uints(probs.view(np.uint32).astype(np.uint64), PROBABILITY_BITS)
        extras = {
            "s": int(rows.shape[0]),
            "d": int(rows.shape[1]),
            "n_source": obj.n_source_rows,
        }
        return obj.params, extras, writer

    def decode(self, frame: Frame) -> ImportanceSampleSketch:
        _require(frame.params is not None, "importance-sample frame needs params")
        s, d = _extra(frame, "s", int), _extra(frame, "d", int)
        n_source = _extra(frame, "n_source", int)
        _require(s >= 1 and d >= 1, "importance-sample shape must be positive")
        _require(
            frame.n_bits == s * (d + PROBABILITY_BITS),
            "importance-sample payload must be s*(d+32) bits",
        )
        reader = frame.reader()
        rows = reader.read_bits(s * d).reshape(s, d)
        codes = reader.read_uints(s, PROBABILITY_BITS)
        probs = codes.astype(np.uint32).view(np.float32)
        return ImportanceSampleSketch(frame.params, rows, probs, n_source)


# ----------------------------------------------------------------------
# Streaming summary codecs (the distributed-ingest shards).
# ----------------------------------------------------------------------
class _CountMinCodec(SketchCodec):
    """Count-Min: hash coefficients then the counter table, 64 bits each."""

    name = "count-min"
    handles = CountMinSketch

    def encode(self, obj: CountMinSketch):
        writer = BitWriter()
        writer.write_uints(obj._a.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._b.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._table.reshape(-1).astype(np.uint64), COUNT_BITS)
        extras = {
            "universe": obj.universe,
            "width": obj.width,
            "depth": obj.depth,
            "conservative": obj.conservative,
            "stream_length": obj.stream_length,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> CountMinSketch:
        universe = _extra(frame, "universe", int)
        width, depth = _extra(frame, "width", int), _extra(frame, "depth", int)
        conservative = _extra(frame, "conservative", bool)
        _require(
            frame.n_bits == (depth * width + 2 * depth) * COUNT_BITS,
            "count-min payload length disagrees with width/depth",
        )
        reader = frame.reader()
        out = CountMinSketch(universe, width, depth, conservative=conservative, rng=0)
        out._a = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._b = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._table = (
            reader.read_uints(depth * width, COUNT_BITS).astype(np.int64).reshape(depth, width)
        )
        out.stream_length = _extra(frame, "stream_length", int)
        return out


def _encode_slots(
    writer: BitWriter, slots: list[tuple[int, ...]], n_slots: int, widths: tuple[int, ...]
) -> None:
    """Write ``n_slots`` fixed-width records, padding with all-zero records.

    Tracked records are sorted by their first field (the item id) so the
    payload is canonical; zero padding keeps the serialized size equal to
    the summary's slot-capacity accounting.  Records are striped
    field-major (all first fields, then all second fields, ...) so each
    field is one vectorized ``write_uints`` call.
    """
    ordered = sorted(slots)
    for field_idx, width in enumerate(widths):
        column = [record[field_idx] for record in ordered]
        column += [0] * (n_slots - len(ordered))
        writer.write_uints(np.asarray(column, dtype=np.uint64), width)


def _decode_slots(
    reader: BitReader, n_slots: int, widths: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Inverse of :func:`_encode_slots`; drops all-zero padding records."""
    columns = [reader.read_uints(n_slots, width).astype(np.int64) for width in widths]
    records = list(zip(*(col.tolist() for col in columns)))
    return [record for record in records if any(record)]


class _MisraGriesCodec(SketchCodec):
    """Misra-Gries: ``k`` slots of (id, count); free slots zeroed."""

    name = "misra-gries"
    handles = MisraGries

    def encode(self, obj: MisraGries):
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        _encode_slots(
            writer, list(obj._counters.items()), obj.k, (id_bits, COUNT_BITS)
        )
        extras = {
            "universe": obj.universe,
            "k": obj.k,
            "stream_length": obj.stream_length,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> MisraGries:
        universe, k = _extra(frame, "universe", int), _extra(frame, "k", int)
        out = MisraGries(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + COUNT_BITS),
            "misra-gries payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS))
        out._counters = {item: count for item, count in records if count > 0}
        out.stream_length = _extra(frame, "stream_length", int)
        return out


class _SpaceSavingCodec(SketchCodec):
    """SpaceSaving: ``k`` slots of (id, count, error); free slots zeroed."""

    name = "space-saving"
    handles = SpaceSaving

    def encode(self, obj: SpaceSaving):
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [
            (item, count, obj._errors.get(item, 0))
            for item, count in obj._counts.items()
        ]
        _encode_slots(writer, slots, obj.k, (id_bits, COUNT_BITS, COUNT_BITS))
        extras = {
            "universe": obj.universe,
            "k": obj.k,
            "stream_length": obj.stream_length,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> SpaceSaving:
        universe, k = _extra(frame, "universe", int), _extra(frame, "k", int)
        out = SpaceSaving(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + 2 * COUNT_BITS),
            "space-saving payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS, COUNT_BITS))
        out._counts = {item: count for item, count, _ in records if count > 0}
        out._errors = {item: err for item, count, err in records if count > 0}
        out.stream_length = _extra(frame, "stream_length", int)
        return out


class _LossyCountingCodec(SketchCodec):
    """Lossy counting: one (id, count, delta) record per held entry."""

    name = "lossy-counting"
    handles = LossyCounting

    def encode(self, obj: LossyCounting):
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [(item, c, d) for item, (c, d) in obj._entries.items()]
        # The accounting charges at least one entry even when empty.
        _encode_slots(
            writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS, COUNT_BITS)
        )
        extras = {
            "universe": obj.universe,
            "epsilon": obj.epsilon,
            "stream_length": obj.stream_length,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> LossyCounting:
        universe = _extra(frame, "universe", int)
        epsilon = _extra(frame, "epsilon", float)
        out = LossyCounting(universe, epsilon)
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "lossy-counting payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS, COUNT_BITS))
        out._entries = {item: (c, d) for item, c, d in records if c > 0}
        out.stream_length = _extra(frame, "stream_length", int)
        return out


class _StickySamplingCodec(SketchCodec):
    """Sticky sampling: one (id, count) record per tracked entry.

    The sampling RNG state is not part of the summary's accounting; a
    deserialized summary answers queries bit-identically and can continue
    streaming, but its future sampling coin flips are fresh randomness.
    """

    name = "sticky-sampling"
    handles = StickySampling

    def encode(self, obj: StickySampling):
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = list(obj._counts.items())
        _encode_slots(writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS))
        extras = {
            "universe": obj.universe,
            "epsilon": obj.epsilon,
            "threshold": obj.threshold,
            "delta": obj.delta,
            "rate": obj.sampling_rate,
            "stream_length": obj.stream_length,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> StickySampling:
        universe = _extra(frame, "universe", int)
        out = StickySampling(
            universe,
            _extra(frame, "epsilon", float),
            _extra(frame, "threshold", float),
            _extra(frame, "delta", float),
        )
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "sticky-sampling payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS))
        out._counts = {item: count for item, count in records if count > 0}
        out._rate = _extra(frame, "rate", int)
        out.stream_length = _extra(frame, "stream_length", int)
        return out


class _ReservoirCodec(SketchCodec):
    """Item reservoir: ``size`` id slots plus the stream-length counter."""

    name = "reservoir"
    handles = ReservoirSample

    def encode(self, obj: ReservoirSample):
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        sample = obj.sample
        ids = sample + [0] * (obj.size - len(sample))
        writer.write_uints(np.asarray(ids, dtype=np.uint64), id_bits)
        writer.write_uint(obj.stream_length, COUNT_BITS)
        extras = {"universe": obj.universe, "size": obj.size, "filled": len(sample)}
        return None, extras, writer

    def decode(self, frame: Frame) -> ReservoirSample:
        universe, size = _extra(frame, "universe", int), _extra(frame, "size", int)
        filled = _extra(frame, "filled", int)
        out = ReservoirSample(universe, size, rng=0)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == size * id_bits + COUNT_BITS,
            "reservoir payload length disagrees with size",
        )
        _require(0 <= filled <= size, "reservoir fill count out of range")
        reader = frame.reader()
        ids = reader.read_uints(size, id_bits).astype(int).tolist()
        out._reservoir = ids[:filled]
        out.stream_length = reader.read_uint(COUNT_BITS)
        return out


class _RowReservoirCodec(SketchCodec):
    """Row reservoir: ``size`` row slots of ``d`` bits each (the shard form).

    This is the distributed-SUBSAMPLE transport: sketch rows where the data
    lives, :func:`dump` the reservoir, ship it, :func:`load` and merge with
    :func:`repro.streaming.merge.merge_row_reservoirs`.
    """

    name = "row-reservoir"
    handles = RowReservoir

    def encode(self, obj: RowReservoir):
        writer = BitWriter()
        filled = len(obj._words)
        if filled:
            words = np.array(obj._words, dtype=np.uint64)
            rows = PackedRows.from_words(words, obj.d).to_matrix()
            writer.write_bits(rows.reshape(-1))
        if obj.size > filled:
            writer.write_bits(np.zeros((obj.size - filled) * obj.d, dtype=bool))
        # rows_seen is summary state (the merge rule weights by it), so it
        # rides in the charged payload, not the header.
        writer.write_uint(obj.rows_seen, COUNT_BITS)
        extras = {"d": obj.d, "size": obj.size, "filled": filled}
        return None, extras, writer

    def decode(self, frame: Frame) -> RowReservoir:
        d, size = _extra(frame, "d", int), _extra(frame, "size", int)
        filled = _extra(frame, "filled", int)
        out = RowReservoir(d, size, rng=0)
        _require(
            frame.n_bits == size * d + COUNT_BITS,
            "row-reservoir payload must be size*d + 64 bits",
        )
        _require(0 <= filled <= size, "row-reservoir fill count out of range")
        reader = frame.reader()
        rows = reader.read_bits(size * d).reshape(size, d)
        if filled:
            out._words = list(pack_rows(rows[:filled]))
        out.rows_seen = reader.read_uint(COUNT_BITS)
        return out


class _ItemsetMinerCodec(SketchCodec):
    """Streaming itemset miner: (itemset, count, delta) per tracked entry.

    Each itemset is written as exactly ``max_size`` item fields of
    ``ceil(log2 d)`` bits (the accounting's id charge); shorter itemsets
    pad by repeating their last item, which is unambiguous because real
    itemsets are strictly increasing.
    """

    name = "itemset-miner"
    handles = StreamingItemsetMiner

    def encode(self, obj: StreamingItemsetMiner):
        import math

        writer = BitWriter()
        item_bits = max(1, math.ceil(math.log2(max(obj.d, 2))))
        entries = sorted(
            (itemset.items, count, delta)
            for itemset, (count, delta) in obj._entries.items()
        )
        slots = []
        for items, count, delta in entries:
            padded = list(items) + [items[-1]] * (obj.max_size - len(items))
            slots.append((*padded, count, delta))
        n_slots = max(1, len(slots))
        widths = (item_bits,) * obj.max_size + (COUNT_BITS, COUNT_BITS)
        _encode_slots(writer, slots, n_slots, widths)
        extras = {
            "d": obj.d,
            "epsilon": obj.epsilon,
            "max_size": obj.max_size,
            "max_row_items": obj.max_row_items,
            "rows_seen": obj.rows_seen,
        }
        return None, extras, writer

    def decode(self, frame: Frame) -> StreamingItemsetMiner:
        import math

        from .db.itemset import Itemset

        d = _extra(frame, "d", int)
        max_size = _extra(frame, "max_size", int)
        out = StreamingItemsetMiner(
            d,
            _extra(frame, "epsilon", float),
            max_size,
            max_row_items=_extra(frame, "max_row_items", int),
        )
        item_bits = max(1, math.ceil(math.log2(max(d, 2))))
        entry_bits = max_size * item_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "itemset-miner payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        widths = (item_bits,) * max_size + (COUNT_BITS, COUNT_BITS)
        entries: dict[Any, tuple[int, int]] = {}
        for record in _decode_slots(frame.reader(), n_slots, widths):
            items, count, delta = record[:max_size], record[-2], record[-1]
            if count <= 0:
                continue
            kept = [items[0]]
            for item in items[1:]:
                if item <= kept[-1]:
                    break  # padding: repeats of the last real item
                kept.append(item)
            _require(kept[-1] < d, "itemset-miner entry has out-of-range item")
            entries[Itemset(kept)] = (count, delta)
        out._entries = entries
        out.rows_seen = _extra(frame, "rows_seen", int)
        return out


for _codec in (
    _ReleaseDbCodec(),
    _ReleaseAnswersCodec(),
    _SubsampleCodec(),
    _ImportanceCodec(),
    _CountMinCodec(),
    _MisraGriesCodec(),
    _SpaceSavingCodec(),
    _LossyCountingCodec(),
    _StickySamplingCodec(),
    _ReservoirCodec(),
    _RowReservoirCodec(),
    _ItemsetMinerCodec(),
):
    register_codec(_codec)
