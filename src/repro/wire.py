"""Versioned wire format: sketches become real bit strings.

The paper models a sketch as a pair ``(S, Q)``: ``S`` maps a database to a
*bit string* and ``Q`` answers queries from that string alone.  This module
makes the split literal.  Every sketch and streaming summary serializes to a
framed payload via :func:`dump` / :func:`dump_to` and is reconstructed -- in
another process, on another machine -- via :func:`load` / :func:`load_from`,
answering queries bit-identically to the original object.  The payload
length *is* the size the lower bounds are compared against: for every
registered codec, ``obj.size_in_bits() == n_bits`` of the encoded payload,
exactly.

Two frame versions are in service.  Version 1 (the original container) is
frozen: every committed v1 frame decodes bit-identically forever, and
:func:`encode_frame` still emits byte-identical v1 frames on request.
Version 2 is the default: binary varint headers, optional zlib payload
compression, and chunked payloads that stream through file objects.

Version 1 layout (all multi-byte header fields big-endian)::

    magic      4 bytes   b"IFSK"
    version    u8        1
    codec      u8 + n    length-prefixed ASCII codec name
    has_params u8        1 if a SketchParams block follows
    params     32 bytes  n u64, d u32, k u32, epsilon f64, delta f64
    extras     u32 + n   length-prefixed canonical JSON (codec metadata)
    n_bits     u64       exact payload length in bits
    payload    bytes     ceil(n_bits / 8) bytes, zero padded
    crc32      u32       CRC-32 of every preceding byte

Version 2 layout (varint = canonical unsigned LEB128, svarint = zigzag
LEB128; fixed-width fields big-endian)::

    magic      4 bytes   b"IFSK"
    version    u8        2
    codec      u8 + n    length-prefixed ASCII codec name
    flags      u8        bit0 PARAMS, bit1 ZLIB, bit2 CHUNKED
    params     varint n, varint d, varint k, f64 epsilon, f64 delta
                         (present iff PARAMS)
    extras     varint field count, then per field (sorted by key):
                 key      u8 + n    length-prefixed ASCII field name
                 tag      u8        0 int, 1 float, 2 bool, 3 str
                 value    svarint / f64 / u8 / varint + UTF-8 bytes
    n_bits     varint    exact *uncompressed* payload length in bits
    payload    not CHUNKED: varint stored byte length, then the bytes
               CHUNKED:     repeated [u32 length, chunk bytes], ended by
                            a u32 zero sentinel
    crc32      u32       running CRC-32 of every preceding byte

When ZLIB is set the stored payload bytes are a zlib stream whose
decompressed length is ``ceil(n_bits / 8)``.  **The charged size never
changes**: ``n_bits`` is always the uncompressed bit count, so
``size_in_bits() == n_bits`` holds with and without compression --
compression is transport thrift, not accounting thrift, exactly as the
lower bounds require (they constrain the information content, and a
deflated frame carries the same information).

The *payload* carries exactly the bits the sketch's size accounting
charges; the header carries only public parameters (shapes, universe
sizes, stream lengths, hash-family metadata) in the same spirit as
:mod:`repro.db.bitmatrix`'s convention that a matrix's shape is public
metadata, not payload.  Decoding is strict: bad magic, unknown codec or
version, truncated or oversized buffers, checksum mismatches, misdeclared
bit counts, and nonzero padding all raise
:class:`~repro.errors.WireFormatError`.  :func:`decode_frame`,
:func:`read_frame`, and :func:`load` dispatch by the version byte, so both
generations decode through one entry point.

Chunked v2 frames are stream-first end to end: :func:`dump_to` drains the
payload through :meth:`~repro.db.serialize.BitWriter.iter_packed` in
bounded windows (never materializing the packed byte string), and
:func:`load_from` hands codecs a windowed
:meth:`~repro.db.serialize.BitReader.windowed` that pulls chunks from the
file as bits are consumed, verifying the running CRC when the final chunk
arrives.  :func:`inspect_frame` reads the header (and checks the CRC by
skimming) without decoding the payload at all.

Codecs are registered per *sketcher name* (``release-db``, ``subsample``,
...) and dispatch by concrete summary type, so
:class:`~repro.core.hybrid.BestOfNaiveSketcher` -- whose output is always
one of the three naive sketch types -- round-trips through whichever codec
matches the sketch it actually built.  Every codec encodes into and
decodes from a single :class:`Header` builder (typed fields, one
serialization of both the v1 JSON block and the v2 binary fields) instead
of hand-rolling extras dicts.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator, Mapping

import numpy as np

from .core.importance import PROBABILITY_BITS, ImportanceSampleSketch
from .core.release_answers import ReleaseAnswersSketch
from .core.release_db import ReleaseDbSketch
from .core.subsample import SubsampleSketch
from .db.database import BinaryDatabase
from .db.packed import PackedRows, pack_rows
from .db.serialize import (
    DEFAULT_CHUNK_BYTES,
    BitReader,
    BitWriter,
    encode_svarint,
    encode_uvarint,
    read_svarint,
    read_uvarint,
)
from .errors import ReproError, SketchSizeError, WireFormatError
from .params import SketchParams
from .streaming.base import COUNT_BITS, StreamSummary, item_id_bits
from .streaming.count_min import CountMinSketch
from .streaming.itemset_stream import StreamingItemsetMiner
from .streaming.lossy_counting import LossyCounting
from .streaming.misra_gries import MisraGries
from .streaming.reservoir import ReservoirSample, RowReservoir
from .streaming.space_saving import SpaceSaving
from .streaming.sticky_sampling import StickySampling

__all__ = [
    "MAGIC",
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION_ENV",
    "DEFAULT_CHUNK_BYTES",
    "default_wire_version",
    "Header",
    "Frame",
    "FrameInfo",
    "SketchCodec",
    "register_codec",
    "codec_names",
    "codec_for",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "inspect_frame",
    "dump",
    "dump_to",
    "load",
    "load_from",
    "load_as",
    "payload_size_bits",
]

MAGIC = b"IFSK"
WIRE_V1 = 1
WIRE_V2 = 2
SUPPORTED_WIRE_VERSIONS = (WIRE_V1, WIRE_V2)
#: The current default frame version for new encodes.
WIRE_VERSION = WIRE_V2
#: Environment override for the default (the CI compat leg sets it to 1).
WIRE_VERSION_ENV = "REPRO_WIRE_VERSION"

_PARAMS_STRUCT = struct.Struct(">QIIdd")

_FLAG_PARAMS = 0x01
_FLAG_ZLIB = 0x02
_FLAG_CHUNKED = 0x04
_KNOWN_FLAGS = _FLAG_PARAMS | _FLAG_ZLIB | _FLAG_CHUNKED

_FIELD_INT = 0
_FIELD_FLOAT = 1
_FIELD_BOOL = 2
_FIELD_STR = 3

#: Hard cap on decoded header fields (codecs use at most six).
_MAX_HEADER_FIELDS = 1024


def default_wire_version() -> int:
    """The frame version new encodes use when none is requested.

    :data:`WIRE_VERSION` (currently 2) unless the
    :data:`WIRE_VERSION_ENV` environment variable selects a supported
    version explicitly -- the hook the forced-v1 CI compatibility leg
    uses.
    """
    raw = os.environ.get(WIRE_VERSION_ENV)
    if raw is None:
        return WIRE_VERSION
    try:
        version = int(raw)
    except ValueError:
        raise WireFormatError(
            f"{WIRE_VERSION_ENV}={raw!r} is not a wire version number"
        ) from None
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"{WIRE_VERSION_ENV}={version} unsupported "
            f"(this build writes {SUPPORTED_WIRE_VERSIONS})"
        )
    return version


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


# ----------------------------------------------------------------------
# The shared header-builder.
# ----------------------------------------------------------------------
class Header:
    """The codecs' common header-builder and typed decode view.

    On encode a codec fills the builder -- :meth:`set_params` for the
    public :class:`SketchParams` block, :meth:`set` for typed metadata
    fields -- and the frame writer serializes it once (canonical JSON
    under v1, binary varint fields under v2).  On decode the codec reads
    the same fields back through the typed getters, every failure
    surfacing as :class:`WireFormatError`.  Field values are restricted
    to the scalar types both serializations carry losslessly: ``bool``,
    ``int``, ``float``, ``str``.
    """

    __slots__ = ("params", "_fields")

    def __init__(
        self,
        params: SketchParams | None = None,
        fields: Mapping[str, Any] | None = None,
    ) -> None:
        self.params = params
        self._fields: dict[str, Any] = {}
        if fields:
            for key, value in fields.items():
                self.set(key, value)

    @classmethod
    def _decoded(
        cls, params: SketchParams | None, fields: dict[str, Any]
    ) -> "Header":
        """A view over already-parsed fields (typed getters still gate use)."""
        header = cls(params)
        header._fields = fields
        return header

    def set_params(self, params: SketchParams | None) -> "Header":
        """Attach the public parameter block."""
        self.params = params
        return self

    def set(self, key: str, value: Any) -> "Header":
        """Add one typed metadata field (chainable)."""
        if not isinstance(key, str) or not 1 <= len(key) <= 255:
            raise WireFormatError(f"header field key {key!r} must be 1..255 chars")
        try:
            key.encode("ascii")
        except UnicodeEncodeError as exc:
            raise WireFormatError(f"header field key {key!r} is not ASCII") from exc
        if not isinstance(value, (bool, int, float, str)):
            raise WireFormatError(
                f"header field {key!r} has unsupported type {type(value).__name__}"
            )
        self._fields[key] = value
        return self

    @property
    def fields(self) -> dict[str, Any]:
        """The metadata fields as a plain dict (copy)."""
        return dict(self._fields)

    def _get(self, key: str) -> Any:
        value = self._fields.get(key)
        _require(value is not None, f"frame header is missing extra {key!r}")
        return value

    def get_int(self, key: str) -> int:
        """Typed field access; bools are not ints on the wire."""
        value = self._get(key)
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"extra {key!r} must be int",
        )
        return value

    def get_float(self, key: str) -> float:
        value = self._get(key)
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"extra {key!r} must be a number",
        )
        return float(value)

    def get_bool(self, key: str) -> bool:
        value = self._get(key)
        _require(isinstance(value, bool), f"extra {key!r} must be bool")
        return value

    def get_str(self, key: str) -> str:
        value = self._get(key)
        _require(isinstance(value, str), f"extra {key!r} must be str")
        return value


class Frame:
    """A decoded wire frame: codec id, header, and the payload.

    Frames read from a stream (:func:`read_frame`) keep chunked payloads
    *lazy*: the bytes stay in the file until :meth:`reader` pulls them in
    windows or :attr:`payload` materializes them, and the trailing CRC is
    verified exactly when the final chunk is consumed.  In-memory frames
    (:func:`decode_frame`) are always materialized and verified up front.
    """

    __slots__ = (
        "codec",
        "version",
        "header",
        "n_bits",
        "compressed",
        "chunked",
        "_payload",
        "_chunks",
    )

    def __init__(
        self,
        codec: str,
        header: Header,
        n_bits: int,
        *,
        version: int,
        payload: bytes | None = None,
        chunks: Iterator[bytes] | None = None,
        compressed: bool = False,
        chunked: bool = False,
    ) -> None:
        if (payload is None) == (chunks is None):
            raise WireFormatError("frame needs exactly one of payload or chunks")
        self.codec = codec
        self.version = version
        self.header = header
        self.n_bits = n_bits
        self.compressed = compressed
        self.chunked = chunked
        self._payload = payload
        self._chunks = chunks

    @property
    def params(self) -> SketchParams | None:
        """The public parameter block (header passthrough)."""
        return self.header.params

    @property
    def extras(self) -> dict[str, Any]:
        """The header's metadata fields as a plain dict."""
        return self.header.fields

    def _claim_chunks(self) -> Iterator[bytes]:
        if self._chunks is None:
            raise WireFormatError("frame payload stream already consumed")
        chunks, self._chunks = self._chunks, None
        return chunks

    @property
    def payload(self) -> bytes:
        """The uncompressed payload bytes (materialized on first access)."""
        if self._payload is None:
            self._payload = b"".join(self._claim_chunks())
        return self._payload

    def reader(self) -> BitReader:
        """A strict bit reader over the payload.

        In-memory frames get the eager reader (validates length and
        padding up front); streamed frames get the windowed reader, which
        enforces the same invariants chunk by chunk without materializing
        the payload.
        """
        if self._payload is not None:
            return BitReader(self._payload, self.n_bits)
        return BitReader.windowed(self._claim_chunks(), self.n_bits)


@dataclass(frozen=True)
class FrameInfo:
    """What :func:`inspect_frame` learns from a frame without decoding it."""

    codec: str
    version: int
    params: SketchParams | None
    extras: dict[str, Any]
    n_bits: int
    compressed: bool
    chunked: bool
    header_bytes: int
    stored_payload_bytes: int
    frame_bytes: int
    crc_ok: bool


# ----------------------------------------------------------------------
# Checksummed stream adapters.
# ----------------------------------------------------------------------
class _CrcWriter:
    """Counts and CRCs every body byte written to the underlying stream."""

    __slots__ = ("_stream", "crc", "count")

    def __init__(self, stream: IO[bytes]) -> None:
        self._stream = stream
        self.crc = 0
        self.count = 0

    def write(self, data: bytes) -> None:
        if data:
            self._stream.write(data)
            self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
            self.count += len(data)

    def write_raw(self, data: bytes) -> None:
        """Write without updating the running CRC (the trailer itself)."""
        self._stream.write(data)
        self.count += len(data)


class _CrcReader:
    """Exact reads with a running CRC; short reads are frame errors.

    ``max_bytes`` bounds the total bytes this reader will consume from
    the stream.  The budget is checked *before* each read, so a frame
    that declares an oversized section (a 4 GiB chunk, a giant header
    string) is rejected without ever attempting the allocation -- the
    guard a socket server needs against hostile peers.
    """

    __slots__ = ("_stream", "crc", "count", "_max_bytes")

    def __init__(self, stream: IO[bytes], max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise WireFormatError(f"max_bytes must be >= 1, got {max_bytes}")
        self._stream = stream
        self.crc = 0
        self.count = 0
        self._max_bytes = max_bytes

    def _read_exact(self, n: int) -> bytes:
        if n == 0:
            return b""
        if self._max_bytes is not None and self.count + n > self._max_bytes:
            raise WireFormatError(
                f"frame exceeds the {self._max_bytes}-byte limit "
                f"(needs >= {self.count + n} bytes)"
            )
        parts: list[bytes] = []
        got = 0
        while got < n:
            data = self._stream.read(n - got)
            if not data:
                raise WireFormatError(
                    f"truncated frame: wanted {n} bytes, got {got}"
                )
            parts.append(data)
            got += len(data)
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def read(self, n: int) -> bytes:
        data = self._read_exact(n)
        self.crc = zlib.crc32(data, self.crc) & 0xFFFFFFFF
        self.count += len(data)
        return data

    def read_raw(self, n: int) -> bytes:
        """Read without updating the running CRC (the trailer itself)."""
        data = self._read_exact(n)
        self.count += len(data)
        return data


def _read_uvarint(reader: _CrcReader) -> int:
    try:
        return read_uvarint(reader)
    except SketchSizeError as exc:
        raise WireFormatError(f"invalid varint in frame: {exc}") from exc


def _read_svarint(reader: _CrcReader) -> int:
    try:
        return read_svarint(reader)
    except SketchSizeError as exc:
        raise WireFormatError(f"invalid varint in frame: {exc}") from exc


def _validate_codec_name(codec: str) -> bytes:
    try:
        name = codec.encode("ascii")
    except UnicodeEncodeError:
        raise WireFormatError(f"codec name {codec!r} must be ASCII") from None
    if not 1 <= len(name) <= 255:
        raise WireFormatError(f"codec name {codec!r} must be 1..255 ASCII bytes")
    return name


# ----------------------------------------------------------------------
# Version 1: frozen encode (byte-identical forever) and stream decode.
# ----------------------------------------------------------------------
def _encode_frame_v1(
    codec: str,
    params: SketchParams | None,
    extras: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
) -> bytes:
    name = _validate_codec_name(codec)
    parts = [MAGIC, bytes([WIRE_V1]), bytes([len(name)]), name]
    if params is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(
            _PARAMS_STRUCT.pack(params.n, params.d, params.k, params.epsilon, params.delta)
        )
    blob = json.dumps(dict(extras), sort_keys=True, separators=(",", ":")).encode()
    parts.append(struct.pack(">I", len(blob)))
    parts.append(blob)
    parts.append(struct.pack(">Q", n_bits))
    parts.append(payload)
    body = b"".join(parts)
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


def _read_header_v1(reader: _CrcReader) -> tuple[str, Header, int]:
    """Parse a v1 frame through its ``n_bits`` field (magic/version done)."""
    name_len = reader.read(1)[0]
    try:
        codec = reader.read(name_len).decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError("codec name is not ASCII") from exc
    has_params = reader.read(1)[0]
    params: SketchParams | None = None
    if has_params == 1:
        n, d, k, epsilon, delta = _PARAMS_STRUCT.unpack(reader.read(_PARAMS_STRUCT.size))
        try:
            params = SketchParams(n=n, d=d, k=k, epsilon=epsilon, delta=delta)
        except Exception as exc:
            raise WireFormatError(f"invalid params block: {exc}") from exc
    elif has_params != 0:
        raise WireFormatError(f"params flag must be 0 or 1, got {has_params}")
    (extras_len,) = struct.unpack(">I", reader.read(4))
    blob = reader.read(extras_len)
    try:
        extras = json.loads(blob.decode()) if extras_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"invalid extras block: {exc}") from exc
    if not isinstance(extras, dict):
        raise WireFormatError("extras block must decode to an object")
    (n_bits,) = struct.unpack(">Q", reader.read(8))
    return codec, Header._decoded(params, extras), n_bits


def _read_frame_v1(reader: _CrcReader) -> Frame:
    codec, header, n_bits = _read_header_v1(reader)
    payload = reader.read((n_bits + 7) // 8)
    _check_trailing_crc(reader)
    return Frame(codec, header, n_bits, version=WIRE_V1, payload=payload)


# ----------------------------------------------------------------------
# Version 2: varint binary header, optional zlib, chunked streaming.
# ----------------------------------------------------------------------
def _deflate(chunks: Iterable[bytes], level: int = 6) -> Iterator[bytes]:
    deflater = zlib.compressobj(level)
    for chunk in chunks:
        out = deflater.compress(chunk)
        if out:
            yield out
    tail = deflater.flush()
    if tail:
        yield tail


def _inflate(
    chunks: Iterable[bytes], window: int = DEFAULT_CHUNK_BYTES
) -> Iterator[bytes]:
    """Windowed zlib decode: output windows are bounded even for bombs."""
    inflater = zlib.decompressobj()
    for chunk in chunks:
        data = chunk
        while data:
            try:
                out = inflater.decompress(data, window)
            except zlib.error as exc:
                raise WireFormatError(f"corrupt compressed payload: {exc}") from exc
            if out:
                yield out
            data = inflater.unconsumed_tail
    try:
        tail = inflater.flush()
    except zlib.error as exc:
        raise WireFormatError(f"corrupt compressed payload: {exc}") from exc
    if tail:
        yield tail
    if not inflater.eof:
        raise WireFormatError("compressed payload ended before its zlib stream")
    if inflater.unused_data:
        raise WireFormatError("compressed payload has data after its zlib stream")


def _iter_stored(
    reader: _CrcReader, stored_len: int, window: int = DEFAULT_CHUNK_BYTES
) -> Iterator[bytes]:
    remaining = stored_len
    while remaining:
        take = min(window, remaining)
        yield reader.read(take)
        remaining -= take


def _iter_chunked(reader: _CrcReader) -> Iterator[bytes]:
    while True:
        (length,) = struct.unpack(">I", reader.read(4))
        if length == 0:
            return
        yield reader.read(length)


def _check_trailing_crc(reader: _CrcReader) -> None:
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    if reader.crc != expected:
        raise WireFormatError("checksum mismatch: frame corrupted in transit")


def _finalize_payload(
    chunks: Iterable[bytes], need_bytes: int, n_bits: int, reader: _CrcReader
) -> Iterator[bytes]:
    """Enforce the byte total, then verify the CRC once the payload ends."""
    total = 0
    for chunk in chunks:
        if not chunk:
            continue
        total += len(chunk)
        if total > need_bytes:
            raise WireFormatError(
                f"payload of >= {total} bytes disagrees with declared "
                f"{n_bits} bits ({need_bytes} bytes expected)"
            )
        yield chunk
    if total != need_bytes:
        raise WireFormatError(
            f"payload of {total} bytes disagrees with declared "
            f"{n_bits} bits ({need_bytes} bytes expected)"
        )
    _check_trailing_crc(reader)


def _write_header_v2(
    writer: _CrcWriter,
    name: bytes,
    params: SketchParams | None,
    fields: Mapping[str, Any],
    n_bits: int,
    *,
    compress: bool,
    chunked: bool,
) -> None:
    flags = (
        (_FLAG_PARAMS if params is not None else 0)
        | (_FLAG_ZLIB if compress else 0)
        | (_FLAG_CHUNKED if chunked else 0)
    )
    writer.write(MAGIC)
    writer.write(bytes([WIRE_V2, len(name)]))
    writer.write(name)
    writer.write(bytes([flags]))
    if params is not None:
        writer.write(
            encode_uvarint(params.n) + encode_uvarint(params.d) + encode_uvarint(params.k)
        )
        writer.write(struct.pack(">dd", params.epsilon, params.delta))
    items = sorted(fields.items())
    writer.write(encode_uvarint(len(items)))
    for key, value in items:
        try:
            key_bytes = key.encode("ascii")
        except (UnicodeEncodeError, AttributeError):
            raise WireFormatError(f"header field key {key!r} is not ASCII") from None
        if not 1 <= len(key_bytes) <= 255:
            raise WireFormatError(f"header field key {key!r} must be 1..255 chars")
        writer.write(bytes([len(key_bytes)]))
        writer.write(key_bytes)
        if isinstance(value, bool):
            writer.write(bytes([_FIELD_BOOL, 1 if value else 0]))
        elif isinstance(value, int):
            writer.write(bytes([_FIELD_INT]) + encode_svarint(value))
        elif isinstance(value, float):
            writer.write(bytes([_FIELD_FLOAT]) + struct.pack(">d", value))
        elif isinstance(value, str):
            data = value.encode("utf-8")
            writer.write(bytes([_FIELD_STR]) + encode_uvarint(len(data)))
            writer.write(data)
        else:
            raise WireFormatError(
                f"header field {key!r} has unsupported type {type(value).__name__}"
            )
    writer.write(encode_uvarint(n_bits))


def _write_frame_v2(
    stream: IO[bytes],
    codec: str,
    params: SketchParams | None,
    fields: Mapping[str, Any],
    payload_chunks: Iterable[bytes],
    n_bits: int,
    *,
    compress: bool,
    chunked: bool,
) -> int:
    name = _validate_codec_name(codec)
    writer = _CrcWriter(stream)
    _write_header_v2(
        writer, name, params, fields, n_bits, compress=compress, chunked=chunked
    )
    source: Iterable[bytes] = payload_chunks
    if compress:
        source = _deflate(source)
    if chunked:
        for chunk in source:
            if not chunk:
                continue
            writer.write(struct.pack(">I", len(chunk)))
            writer.write(chunk)
        writer.write(struct.pack(">I", 0))
    else:
        data = b"".join(source)
        writer.write(encode_uvarint(len(data)))
        writer.write(data)
    writer.write_raw(struct.pack(">I", writer.crc))
    return writer.count


def _read_header_v2(
    reader: _CrcReader,
) -> tuple[str, Header, int, bool, bool]:
    """Parse a v2 frame through its ``n_bits`` field (magic/version done)."""
    name_len = reader.read(1)[0]
    try:
        codec = reader.read(name_len).decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError("codec name is not ASCII") from exc
    flags = reader.read(1)[0]
    if flags & ~_KNOWN_FLAGS:
        raise WireFormatError(f"unknown frame flags 0x{flags:02x}")
    params: SketchParams | None = None
    if flags & _FLAG_PARAMS:
        n = _read_uvarint(reader)
        d = _read_uvarint(reader)
        k = _read_uvarint(reader)
        epsilon, delta = struct.unpack(">dd", reader.read(16))
        try:
            params = SketchParams(n=n, d=d, k=k, epsilon=epsilon, delta=delta)
        except Exception as exc:
            raise WireFormatError(f"invalid params block: {exc}") from exc
    n_fields = _read_uvarint(reader)
    if n_fields > _MAX_HEADER_FIELDS:
        raise WireFormatError(f"frame declares {n_fields} header fields")
    fields: dict[str, Any] = {}
    for _ in range(n_fields):
        key_len = reader.read(1)[0]
        if key_len == 0:
            raise WireFormatError("empty header field key")
        try:
            key = reader.read(key_len).decode("ascii")
        except UnicodeDecodeError as exc:
            raise WireFormatError("header field key is not ASCII") from exc
        if key in fields:
            raise WireFormatError(f"duplicate header field {key!r}")
        tag = reader.read(1)[0]
        value: Any
        if tag == _FIELD_INT:
            value = _read_svarint(reader)
        elif tag == _FIELD_FLOAT:
            (value,) = struct.unpack(">d", reader.read(8))
        elif tag == _FIELD_BOOL:
            raw = reader.read(1)[0]
            if raw > 1:
                raise WireFormatError(f"bool field {key!r} has value {raw}")
            value = bool(raw)
        elif tag == _FIELD_STR:
            length = _read_uvarint(reader)
            try:
                value = reader.read(length).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireFormatError(f"str field {key!r} is not UTF-8") from exc
        else:
            raise WireFormatError(f"unknown header field tag {tag}")
        fields[key] = value
    n_bits = _read_uvarint(reader)
    compressed = bool(flags & _FLAG_ZLIB)
    chunked = bool(flags & _FLAG_CHUNKED)
    return codec, Header._decoded(params, fields), n_bits, compressed, chunked


def _read_frame_v2(reader: _CrcReader) -> Frame:
    codec, header, n_bits, compressed, chunked = _read_header_v2(reader)
    if chunked:
        raw: Iterator[bytes] = _iter_chunked(reader)
    else:
        stored_len = _read_uvarint(reader)
        raw = _iter_stored(reader, stored_len)
    source = _inflate(raw) if compressed else raw
    chunks = _finalize_payload(source, (n_bits + 7) // 8, n_bits, reader)
    return Frame(
        codec,
        header,
        n_bits,
        version=WIRE_V2,
        chunks=chunks,
        compressed=compressed,
        chunked=chunked,
    )


# ----------------------------------------------------------------------
# Frame encoding / decoding entry points (version dispatch).
# ----------------------------------------------------------------------
def encode_frame(
    codec: str,
    params: SketchParams | None,
    extras: Mapping[str, Any],
    payload: bytes,
    n_bits: int,
    *,
    version: int | None = None,
    compress: bool = False,
) -> bytes:
    """Assemble the framed byte string for one serialized summary.

    ``version`` selects the layout (default: :func:`default_wire_version`).
    v1 output is byte-identical to every frame PR 3 ever committed.
    ``compress`` (v2 only) stores the payload as a zlib stream; the
    declared ``n_bits`` -- the charged size -- is unchanged.
    """
    if version is None:
        version = default_wire_version()
    _validate_codec_name(codec)
    if len(payload) != (n_bits + 7) // 8:
        raise WireFormatError(
            f"payload of {len(payload)} bytes disagrees with {n_bits} bits"
        )
    if version == WIRE_V1:
        if compress:
            raise WireFormatError("wire v1 frames cannot be compressed")
        return _encode_frame_v1(codec, params, extras, payload, n_bits)
    if version == WIRE_V2:
        out = io.BytesIO()
        _write_frame_v2(
            out,
            codec,
            params,
            extras,
            (payload,) if payload else (),
            n_bits,
            compress=compress,
            chunked=False,
        )
        return out.getvalue()
    raise WireFormatError(
        f"unsupported wire version {version} (this build writes {SUPPORTED_WIRE_VERSIONS})"
    )


def read_frame(stream: IO[bytes], *, max_bytes: int | None = None) -> Frame:
    """Read exactly one frame from a binary stream, dispatching by version.

    v2 payloads stay lazy: the returned frame pulls chunks from the
    stream as its :meth:`Frame.reader` is consumed (or when
    :attr:`Frame.payload` is touched) and verifies the running CRC at the
    final chunk, so giant frames decode without materializing.  Exactly
    the frame's bytes are consumed from the stream on success.

    ``max_bytes`` caps the total bytes read for this frame (header,
    payload, and trailer together).  On an untrusted transport -- the
    sketch server's socket peers -- the cap turns a hostile frame that
    declares an enormous section into an immediate
    :class:`WireFormatError` *before* any oversized read or allocation
    is attempted; the budget also applies to the lazy chunk pulls.

    Raises
    ------
    WireFormatError
        On any malformed, truncated, corrupted, or unknown-format input,
        or when the frame would exceed ``max_bytes``.
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    if version == WIRE_V1:
        return _read_frame_v1(reader)
    if version == WIRE_V2:
        return _read_frame_v2(reader)
    raise WireFormatError(
        f"unsupported wire version {version} (this build reads {SUPPORTED_WIRE_VERSIONS})"
    )


def decode_frame(buf: bytes) -> Frame:
    """Parse and validate an in-memory frame produced by :func:`encode_frame`.

    The returned frame is fully materialized and CRC-verified.

    Raises
    ------
    WireFormatError
        On any malformed, truncated, corrupted, or unknown-format input,
        including trailing bytes after the frame.
    """
    stream = io.BytesIO(buf)
    frame = read_frame(stream)
    frame.payload  # noqa: B018 -- materialize: runs the byte-total and CRC checks
    if stream.read(1):
        raise WireFormatError("trailing garbage after frame")
    return frame


def inspect_frame(stream: IO[bytes], *, max_bytes: int | None = None) -> FrameInfo:
    """Read a frame's header -- and skim its checksum -- without decoding.

    Parses codec, version, params, extras, flags, and ``n_bits`` from the
    header alone, then skims the stored payload bytes (no decompression,
    no codec dispatch) to verify the trailing CRC.  A structurally
    unparseable or truncated frame raises :class:`WireFormatError`; a
    parseable frame with a wrong checksum is *reported* via
    ``crc_ok=False`` so tooling can describe the corruption.
    ``max_bytes`` bounds total byte consumption as in :func:`read_frame`.
    """
    reader = _CrcReader(stream, max_bytes)
    magic = reader.read(len(MAGIC))
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}: not a sketch frame")
    version = reader.read(1)[0]
    compressed = chunked = False
    if version == WIRE_V1:
        codec, header, n_bits = _read_header_v1(reader)
        header_bytes = reader.count
        stored = (n_bits + 7) // 8
        for _ in _iter_stored(reader, stored):
            pass
    elif version == WIRE_V2:
        codec, header, n_bits, compressed, chunked = _read_header_v2(reader)
        header_bytes = reader.count
        if chunked:
            stored = 0
            for chunk in _iter_chunked(reader):
                stored += len(chunk)
        else:
            stored = _read_uvarint(reader)
            for _ in _iter_stored(reader, stored):
                pass
    else:
        raise WireFormatError(
            f"unsupported wire version {version} "
            f"(this build reads {SUPPORTED_WIRE_VERSIONS})"
        )
    (expected,) = struct.unpack(">I", reader.read_raw(4))
    return FrameInfo(
        codec=codec,
        version=version,
        params=header.params,
        extras=header.fields,
        n_bits=n_bits,
        compressed=compressed,
        chunked=chunked,
        header_bytes=header_bytes,
        stored_payload_bytes=stored,
        frame_bytes=reader.count,
        crc_ok=reader.crc == expected,
    )


# ----------------------------------------------------------------------
# Codec registry.
# ----------------------------------------------------------------------
class SketchCodec(ABC):
    """One serializer: a sketcher name plus encode/decode for its summaries.

    Codecs never hand-roll extras dicts: :meth:`encode` fills the shared
    :class:`Header` builder with the summary's public metadata and
    returns only the payload, and :meth:`decode` reads the same fields
    back through the header's typed getters.  One header implementation
    therefore serves both frame generations (JSON under v1, binary
    varint fields under v2) for all registered codecs.
    """

    #: Registry key; matches the producing sketcher's ``name`` where one exists.
    name: str = "abstract"
    #: Concrete summary class this codec round-trips.
    handles: type = object

    @abstractmethod
    def encode(self, obj: Any, header: Header) -> BitWriter | tuple[bytes, int]:
        """Fill ``header`` and serialize ``obj``'s payload.

        The payload is either a :class:`BitWriter` to be packed (or
        drained to a stream), or -- for summaries that already hold their
        canonical packed payload -- a ``(payload_bytes, n_bits)`` pair
        passed through verbatim.
        """

    @abstractmethod
    def decode(self, frame: Frame) -> Any:
        """Reconstruct a summary from a validated frame."""


_CODECS: dict[str, SketchCodec] = {}
_BY_TYPE: dict[type, SketchCodec] = {}


def register_codec(codec: SketchCodec) -> SketchCodec:
    """Add a codec to the registry (keyed by sketcher name and by type)."""
    if codec.name in _CODECS:
        raise WireFormatError(f"codec {codec.name!r} already registered")
    if codec.handles in _BY_TYPE:
        raise WireFormatError(f"type {codec.handles.__name__} already has a codec")
    _CODECS[codec.name] = codec
    _BY_TYPE[codec.handles] = codec
    return codec


def codec_names() -> tuple[str, ...]:
    """All registered codec names, sorted."""
    return tuple(sorted(_CODECS))


def codec_for(obj: Any) -> SketchCodec:
    """The codec handling ``obj``'s concrete type.

    Raises
    ------
    WireFormatError
        If no registered codec handles the type.
    """
    codec = _BY_TYPE.get(type(obj))
    if codec is None:
        raise WireFormatError(f"no codec registered for {type(obj).__name__}")
    return codec


def _encoded_payload(payload: BitWriter | tuple[bytes, int]) -> tuple[bytes, int]:
    if isinstance(payload, BitWriter):
        return payload.getvalue(), payload.n_bits
    return payload


def dump(obj: Any, *, version: int | None = None, compress: bool = False) -> bytes:
    """Serialize a sketch or streaming summary to its framed bit string.

    ``version`` selects the frame layout (default
    :func:`default_wire_version`); ``compress`` stores a zlib payload
    under v2 while the charged ``n_bits`` stays the uncompressed count.
    """
    codec = codec_for(obj)
    header = Header()
    payload = codec.encode(obj, header)
    buf, n_bits = _encoded_payload(payload)
    return encode_frame(
        codec.name, header.params, header.fields, buf, n_bits,
        version=version, compress=compress,
    )


def dump_to(
    obj: Any,
    stream: IO[bytes],
    *,
    version: int | None = None,
    compress: bool = False,
    chunked: bool | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> int:
    """Serialize straight into a binary stream; returns bytes written.

    Under v2 the payload is drained in ``chunk_bytes`` windows
    (:meth:`BitWriter.iter_packed`), so the full packed byte string is
    never materialized.  ``chunked=None`` picks the layout automatically:
    chunked frames whenever the payload is compressed (its stored length
    is unknown up front) or larger than one window, the compact
    varint-length layout otherwise.
    """
    if version is None:
        version = default_wire_version()
    codec = codec_for(obj)
    header = Header()
    payload = codec.encode(obj, header)
    if version == WIRE_V1:
        if compress or chunked:
            raise WireFormatError("wire v1 frames are neither compressed nor chunked")
        buf, n_bits = _encoded_payload(payload)
        if len(buf) != (n_bits + 7) // 8:
            raise WireFormatError(
                f"payload of {len(buf)} bytes disagrees with {n_bits} bits"
            )
        data = _encode_frame_v1(codec.name, header.params, header.fields, buf, n_bits)
        stream.write(data)
        return len(data)
    if version != WIRE_V2:
        raise WireFormatError(
            f"unsupported wire version {version} "
            f"(this build writes {SUPPORTED_WIRE_VERSIONS})"
        )
    if isinstance(payload, BitWriter):
        n_bits = payload.n_bits
        payload_bytes = (n_bits + 7) // 8
        chunks: Iterable[bytes] = payload.iter_packed(chunk_bytes)
    else:
        buf, n_bits = payload
        if len(buf) != (n_bits + 7) // 8:
            raise WireFormatError(
                f"payload of {len(buf)} bytes disagrees with {n_bits} bits"
            )
        payload_bytes = len(buf)
        view = memoryview(buf)
        chunks = (
            bytes(view[start : start + chunk_bytes])
            for start in range(0, len(view), chunk_bytes)
        )
    if chunked is None:
        chunked = compress or payload_bytes > chunk_bytes
    return _write_frame_v2(
        stream,
        codec.name,
        header.params,
        header.fields,
        chunks,
        n_bits,
        compress=compress,
        chunked=chunked,
    )


def _decode_frame_obj(frame: Frame) -> Any:
    codec = _CODECS.get(frame.codec)
    if codec is None:
        raise WireFormatError(f"unknown codec {frame.codec!r}")
    try:
        return codec.decode(frame)
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(
            f"codec {frame.codec!r} rejected the frame: {exc}"
        ) from exc


def load(buf: bytes) -> Any:
    """Reconstruct a sketch or streaming summary from :func:`dump` output.

    Dispatches by the frame's version byte, so v1 and v2 frames decode
    through the same entry point.  Every decode failure surfaces as
    :class:`WireFormatError`: codec decoders hand untrusted header fields
    to summary constructors, whose own validation errors (``StreamError``,
    ``ParameterError``, ...) are re-raised here as malformed-frame errors
    so callers can rely on one exception type for untrusted input.
    """
    return _decode_frame_obj(decode_frame(buf))


def load_from(stream: IO[bytes], *, max_bytes: int | None = None) -> Any:
    """:func:`load` from a binary stream (one frame consumed exactly).

    Chunked v2 frames decode windowed: payload bytes flow from the
    stream into the codec's bit reader without materializing, and the
    trailing CRC is verified when the final chunk is consumed.
    ``max_bytes`` bounds the frame's total byte consumption, as in
    :func:`read_frame` -- the knob untrusted-transport callers (the
    sketch server) use to reject oversized frames up front.
    """
    return _decode_frame_obj(read_frame(stream, max_bytes=max_bytes))


def load_as(expected: type, buf: bytes) -> Any:
    """:func:`load` plus a type check: the shared ``from_bytes`` body.

    Raises
    ------
    WireFormatError
        If the frame is malformed, corrupted, or decodes to something
        that is not an ``expected`` instance.
    """
    obj = load(buf)
    if not isinstance(obj, expected):
        raise WireFormatError(
            f"frame decodes to {type(obj).__name__}, not a {expected.__name__}"
        )
    return obj


def payload_size_bits(obj: Any) -> int:
    """Exact bit length of ``obj``'s serialized payload (the measured size).

    By the registry contract this equals ``obj.size_in_bits()``; the test
    suite asserts the identity for every codec, under both frame versions
    and with compression on and off (the stored byte count may shrink,
    the charged bit count never does).
    """
    codec = codec_for(obj)
    payload = codec.encode(obj, Header())
    return _encoded_payload(payload)[1]


# ----------------------------------------------------------------------
# Core sketch codecs (Definitions 6-8 and the Conclusion's extension).
# ----------------------------------------------------------------------
class _ReleaseDbCodec(SketchCodec):
    """RELEASE-DB: the payload is the packed database, ``n * d`` bits."""

    name = "release-db"
    handles = ReleaseDbSketch

    def encode(self, obj: ReleaseDbSketch, header: Header):
        db = obj.database
        header.set_params(obj.params).set("n", db.n).set("d", db.d)
        writer = BitWriter()
        writer.write_bits(db.rows.reshape(-1))
        return writer

    def decode(self, frame: Frame) -> ReleaseDbSketch:
        _require(frame.params is not None, "release-db frame needs params")
        n, d = frame.header.get_int("n"), frame.header.get_int("d")
        _require(n >= 1 and d >= 1, "release-db shape must be positive")
        _require(frame.n_bits == n * d, "release-db payload must be n*d bits")
        rows = frame.reader().read_bits(n * d).reshape(n, d)
        return ReleaseDbSketch(frame.params, BinaryDatabase(rows))


class _ReleaseAnswersCodec(SketchCodec):
    """RELEASE-ANSWERS: the payload is the stored answer table itself."""

    name = "release-answers"
    handles = ReleaseAnswersSketch

    def encode(self, obj: ReleaseAnswersSketch, header: Header):
        # The sketch already holds its canonical packed payload; pass it
        # through verbatim instead of an unpack/repack round trip.
        header.set_params(obj.params).set("indicator", obj.stores_indicator_bits)
        return (obj.payload, obj.size_in_bits())

    def decode(self, frame: Frame) -> ReleaseAnswersSketch:
        from .db.serialize import frequency_bits

        _require(frame.params is not None, "release-answers frame needs params")
        indicator = frame.header.get_bool("indicator")
        per_answer = 1 if indicator else frequency_bits(frame.params.epsilon)
        _require(
            frame.n_bits == frame.params.num_itemsets * per_answer,
            "release-answers payload must hold exactly C(d,k) answers",
        )
        # The sketch's own _decode builds the strict BitReader, which
        # enforces the length/padding invariants.
        return ReleaseAnswersSketch(frame.params, frame.payload, frame.n_bits, indicator)


class _SubsampleCodec(SketchCodec):
    """SUBSAMPLE: the payload is the packed sample, ``s * d`` bits."""

    name = "subsample"
    handles = SubsampleSketch

    def encode(self, obj: SubsampleSketch, header: Header):
        sample = obj.sample
        header.set_params(obj.params).set("s", sample.n).set("d", sample.d)
        writer = BitWriter()
        writer.write_bits(sample.rows.reshape(-1))
        return writer

    def decode(self, frame: Frame) -> SubsampleSketch:
        _require(frame.params is not None, "subsample frame needs params")
        s, d = frame.header.get_int("s"), frame.header.get_int("d")
        _require(s >= 1 and d >= 1, "subsample shape must be positive")
        _require(frame.n_bits == s * d, "subsample payload must be s*d bits")
        rows = frame.reader().read_bits(s * d).reshape(s, d)
        return SubsampleSketch(frame.params, BinaryDatabase(rows))


class _ImportanceCodec(SketchCodec):
    """Importance sampling: rows plus 32-bit sampling probabilities.

    The sketch itself quantizes probabilities to IEEE float32 at
    construction (that is what the 32-bit charge buys), so storing the raw
    bit patterns reproduces the Horvitz-Thompson answers exactly.
    """

    name = "importance-sample"
    handles = ImportanceSampleSketch

    def encode(self, obj: ImportanceSampleSketch, header: Header):
        rows, probs = obj.rows, obj.probabilities
        header.set_params(obj.params)
        header.set("s", int(rows.shape[0])).set("d", int(rows.shape[1]))
        header.set("n_source", obj.n_source_rows)
        writer = BitWriter()
        writer.write_bits(rows.reshape(-1))
        writer.write_uints(probs.view(np.uint32).astype(np.uint64), PROBABILITY_BITS)
        return writer

    def decode(self, frame: Frame) -> ImportanceSampleSketch:
        _require(frame.params is not None, "importance-sample frame needs params")
        s, d = frame.header.get_int("s"), frame.header.get_int("d")
        n_source = frame.header.get_int("n_source")
        _require(s >= 1 and d >= 1, "importance-sample shape must be positive")
        _require(
            frame.n_bits == s * (d + PROBABILITY_BITS),
            "importance-sample payload must be s*(d+32) bits",
        )
        reader = frame.reader()
        rows = reader.read_bits(s * d).reshape(s, d)
        codes = reader.read_uints(s, PROBABILITY_BITS)
        probs = codes.astype(np.uint32).view(np.float32)
        return ImportanceSampleSketch(frame.params, rows, probs, n_source)


# ----------------------------------------------------------------------
# Streaming summary codecs (the distributed-ingest shards).
# ----------------------------------------------------------------------
class _CountMinCodec(SketchCodec):
    """Count-Min: hash coefficients then the counter table, 64 bits each."""

    name = "count-min"
    handles = CountMinSketch

    def encode(self, obj: CountMinSketch, header: Header):
        header.set("universe", obj.universe).set("width", obj.width)
        header.set("depth", obj.depth).set("conservative", obj.conservative)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        writer.write_uints(obj._a.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._b.astype(np.uint64), COUNT_BITS)
        writer.write_uints(obj._table.reshape(-1).astype(np.uint64), COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> CountMinSketch:
        universe = frame.header.get_int("universe")
        width, depth = frame.header.get_int("width"), frame.header.get_int("depth")
        conservative = frame.header.get_bool("conservative")
        _require(
            frame.n_bits == (depth * width + 2 * depth) * COUNT_BITS,
            "count-min payload length disagrees with width/depth",
        )
        reader = frame.reader()
        out = CountMinSketch(universe, width, depth, conservative=conservative, rng=0)
        out._a = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._b = reader.read_uints(depth, COUNT_BITS).astype(np.int64)
        out._table = (
            reader.read_uints(depth * width, COUNT_BITS).astype(np.int64).reshape(depth, width)
        )
        out.stream_length = frame.header.get_int("stream_length")
        return out


def _encode_slots(
    writer: BitWriter, slots: list[tuple[int, ...]], n_slots: int, widths: tuple[int, ...]
) -> None:
    """Write ``n_slots`` fixed-width records, padding with all-zero records.

    Tracked records are sorted by their first field (the item id) so the
    payload is canonical; zero padding keeps the serialized size equal to
    the summary's slot-capacity accounting.  Records are striped
    field-major (all first fields, then all second fields, ...) so each
    field is one vectorized ``write_uints`` call.
    """
    ordered = sorted(slots)
    for field_idx, width in enumerate(widths):
        column = [record[field_idx] for record in ordered]
        column += [0] * (n_slots - len(ordered))
        writer.write_uints(np.asarray(column, dtype=np.uint64), width)


def _decode_slots(
    reader: BitReader, n_slots: int, widths: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Inverse of :func:`_encode_slots`; drops all-zero padding records."""
    columns = [reader.read_uints(n_slots, width).astype(np.int64) for width in widths]
    records = list(zip(*(col.tolist() for col in columns)))
    return [record for record in records if any(record)]


class _MisraGriesCodec(SketchCodec):
    """Misra-Gries: ``k`` slots of (id, count); free slots zeroed."""

    name = "misra-gries"
    handles = MisraGries

    def encode(self, obj: MisraGries, header: Header):
        header.set("universe", obj.universe).set("k", obj.k)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        _encode_slots(
            writer, list(obj._counters.items()), obj.k, (id_bits, COUNT_BITS)
        )
        return writer

    def decode(self, frame: Frame) -> MisraGries:
        universe = frame.header.get_int("universe")
        k = frame.header.get_int("k")
        out = MisraGries(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + COUNT_BITS),
            "misra-gries payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS))
        out._counters = {item: count for item, count in records if count > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _SpaceSavingCodec(SketchCodec):
    """SpaceSaving: ``k`` slots of (id, count, error); free slots zeroed."""

    name = "space-saving"
    handles = SpaceSaving

    def encode(self, obj: SpaceSaving, header: Header):
        header.set("universe", obj.universe).set("k", obj.k)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [
            (item, count, obj._errors.get(item, 0))
            for item, count in obj._counts.items()
        ]
        _encode_slots(writer, slots, obj.k, (id_bits, COUNT_BITS, COUNT_BITS))
        return writer

    def decode(self, frame: Frame) -> SpaceSaving:
        universe = frame.header.get_int("universe")
        k = frame.header.get_int("k")
        out = SpaceSaving(universe, k)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == k * (id_bits + 2 * COUNT_BITS),
            "space-saving payload length disagrees with k",
        )
        records = _decode_slots(frame.reader(), k, (id_bits, COUNT_BITS, COUNT_BITS))
        out._counts = {item: count for item, count, _ in records if count > 0}
        out._errors = {item: err for item, count, err in records if count > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _LossyCountingCodec(SketchCodec):
    """Lossy counting: one (id, count, delta) record per held entry."""

    name = "lossy-counting"
    handles = LossyCounting

    def encode(self, obj: LossyCounting, header: Header):
        header.set("universe", obj.universe).set("epsilon", obj.epsilon)
        header.set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = [(item, c, d) for item, (c, d) in obj._entries.items()]
        # The accounting charges at least one entry even when empty.
        _encode_slots(
            writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS, COUNT_BITS)
        )
        return writer

    def decode(self, frame: Frame) -> LossyCounting:
        universe = frame.header.get_int("universe")
        epsilon = frame.header.get_float("epsilon")
        out = LossyCounting(universe, epsilon)
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "lossy-counting payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS, COUNT_BITS))
        out._entries = {item: (c, d) for item, c, d in records if c > 0}
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _StickySamplingCodec(SketchCodec):
    """Sticky sampling: one (id, count) record per tracked entry.

    The sampling RNG state is not part of the summary's accounting; a
    deserialized summary answers queries bit-identically and can continue
    streaming, but its future sampling coin flips are fresh randomness.
    """

    name = "sticky-sampling"
    handles = StickySampling

    def encode(self, obj: StickySampling, header: Header):
        header.set("universe", obj.universe).set("epsilon", obj.epsilon)
        header.set("threshold", obj.threshold).set("delta", obj.delta)
        header.set("rate", obj.sampling_rate).set("stream_length", obj.stream_length)
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        slots = list(obj._counts.items())
        _encode_slots(writer, slots, max(1, len(slots)), (id_bits, COUNT_BITS))
        return writer

    def decode(self, frame: Frame) -> StickySampling:
        universe = frame.header.get_int("universe")
        out = StickySampling(
            universe,
            frame.header.get_float("epsilon"),
            frame.header.get_float("threshold"),
            frame.header.get_float("delta"),
        )
        id_bits = item_id_bits(universe)
        entry_bits = id_bits + COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "sticky-sampling payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        records = _decode_slots(frame.reader(), n_slots, (id_bits, COUNT_BITS))
        out._counts = {item: count for item, count in records if count > 0}
        out._rate = frame.header.get_int("rate")
        out.stream_length = frame.header.get_int("stream_length")
        return out


class _ReservoirCodec(SketchCodec):
    """Item reservoir: ``size`` id slots plus the stream-length counter."""

    name = "reservoir"
    handles = ReservoirSample

    def encode(self, obj: ReservoirSample, header: Header):
        sample = obj.sample
        header.set("universe", obj.universe).set("size", obj.size)
        header.set("filled", len(sample))
        writer = BitWriter()
        id_bits = item_id_bits(obj.universe)
        ids = sample + [0] * (obj.size - len(sample))
        writer.write_uints(np.asarray(ids, dtype=np.uint64), id_bits)
        writer.write_uint(obj.stream_length, COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> ReservoirSample:
        universe = frame.header.get_int("universe")
        size = frame.header.get_int("size")
        filled = frame.header.get_int("filled")
        out = ReservoirSample(universe, size, rng=0)
        id_bits = item_id_bits(universe)
        _require(
            frame.n_bits == size * id_bits + COUNT_BITS,
            "reservoir payload length disagrees with size",
        )
        _require(0 <= filled <= size, "reservoir fill count out of range")
        reader = frame.reader()
        ids = reader.read_uints(size, id_bits).astype(int).tolist()
        out._reservoir = ids[:filled]
        out.stream_length = reader.read_uint(COUNT_BITS)
        return out


class _RowReservoirCodec(SketchCodec):
    """Row reservoir: ``size`` row slots of ``d`` bits each (the shard form).

    This is the distributed-SUBSAMPLE transport: sketch rows where the data
    lives, :func:`dump` the reservoir, ship it, :func:`load` and merge with
    :func:`repro.streaming.merge.merge_row_reservoirs`.
    """

    name = "row-reservoir"
    handles = RowReservoir

    def encode(self, obj: RowReservoir, header: Header):
        filled = len(obj._words)
        header.set("d", obj.d).set("size", obj.size).set("filled", filled)
        writer = BitWriter()
        if filled:
            words = np.array(obj._words, dtype=np.uint64)
            rows = PackedRows.from_words(words, obj.d).to_matrix()
            writer.write_bits(rows.reshape(-1))
        if obj.size > filled:
            writer.write_bits(np.zeros((obj.size - filled) * obj.d, dtype=bool))
        # rows_seen is summary state (the merge rule weights by it), so it
        # rides in the charged payload, not the header.
        writer.write_uint(obj.rows_seen, COUNT_BITS)
        return writer

    def decode(self, frame: Frame) -> RowReservoir:
        d, size = frame.header.get_int("d"), frame.header.get_int("size")
        filled = frame.header.get_int("filled")
        out = RowReservoir(d, size, rng=0)
        _require(
            frame.n_bits == size * d + COUNT_BITS,
            "row-reservoir payload must be size*d + 64 bits",
        )
        _require(0 <= filled <= size, "row-reservoir fill count out of range")
        reader = frame.reader()
        rows = reader.read_bits(size * d).reshape(size, d)
        if filled:
            out._words = list(pack_rows(rows[:filled]))
        out.rows_seen = reader.read_uint(COUNT_BITS)
        return out


class _ItemsetMinerCodec(SketchCodec):
    """Streaming itemset miner: (itemset, count, delta) per tracked entry.

    Each itemset is written as exactly ``max_size`` item fields of
    ``ceil(log2 d)`` bits (the accounting's id charge); shorter itemsets
    pad by repeating their last item, which is unambiguous because real
    itemsets are strictly increasing.
    """

    name = "itemset-miner"
    handles = StreamingItemsetMiner

    def encode(self, obj: StreamingItemsetMiner, header: Header):
        import math

        header.set("d", obj.d).set("epsilon", obj.epsilon)
        header.set("max_size", obj.max_size).set("max_row_items", obj.max_row_items)
        header.set("rows_seen", obj.rows_seen)
        writer = BitWriter()
        item_bits = max(1, math.ceil(math.log2(max(obj.d, 2))))
        entries = sorted(
            (itemset.items, count, delta)
            for itemset, (count, delta) in obj._entries.items()
        )
        slots = []
        for items, count, delta in entries:
            padded = list(items) + [items[-1]] * (obj.max_size - len(items))
            slots.append((*padded, count, delta))
        n_slots = max(1, len(slots))
        widths = (item_bits,) * obj.max_size + (COUNT_BITS, COUNT_BITS)
        _encode_slots(writer, slots, n_slots, widths)
        return writer

    def decode(self, frame: Frame) -> StreamingItemsetMiner:
        import math

        from .db.itemset import Itemset

        d = frame.header.get_int("d")
        max_size = frame.header.get_int("max_size")
        out = StreamingItemsetMiner(
            d,
            frame.header.get_float("epsilon"),
            max_size,
            max_row_items=frame.header.get_int("max_row_items"),
        )
        item_bits = max(1, math.ceil(math.log2(max(d, 2))))
        entry_bits = max_size * item_bits + 2 * COUNT_BITS
        _require(
            frame.n_bits >= entry_bits and frame.n_bits % entry_bits == 0,
            "itemset-miner payload must hold whole entries",
        )
        n_slots = frame.n_bits // entry_bits
        widths = (item_bits,) * max_size + (COUNT_BITS, COUNT_BITS)
        entries: dict[Any, tuple[int, int]] = {}
        for record in _decode_slots(frame.reader(), n_slots, widths):
            items, count, delta = record[:max_size], record[-2], record[-1]
            if count <= 0:
                continue
            kept = [items[0]]
            for item in items[1:]:
                if item <= kept[-1]:
                    break  # padding: repeats of the last real item
                kept.append(item)
            _require(kept[-1] < d, "itemset-miner entry has out-of-range item")
            entries[Itemset(kept)] = (count, delta)
        out._entries = entries
        out.rows_seen = frame.header.get_int("rows_seen")
        return out


for _codec in (
    _ReleaseDbCodec(),
    _ReleaseAnswersCodec(),
    _SubsampleCodec(),
    _ImportanceCodec(),
    _CountMinCodec(),
    _MisraGriesCodec(),
    _SpaceSavingCodec(),
    _LossyCountingCodec(),
    _StickySamplingCodec(),
    _ReservoirCodec(),
    _RowReservoirCodec(),
    _ItemsetMinerCodec(),
):
    register_codec(_codec)
