"""Reproduction of *Space Lower Bounds for Itemset Frequency Sketches* (PODS 2016).

The library has three layers:

1. **Substrates** -- binary databases and itemset queries (:mod:`repro.db`),
   probability/information tooling (:mod:`repro.analysis`), error-correcting
   codes (:mod:`repro.coding`), one-way communication protocols
   (:mod:`repro.comm`), and reconstruction linear algebra
   (:mod:`repro.linalg`).
2. **The paper's systems** -- the four sketching tasks with the three naive,
   provably-optimal algorithms (:mod:`repro.core`) and the executable
   lower-bound constructions and attacks (:mod:`repro.lowerbounds`).
3. **Context** -- frequent-itemset mining (:mod:`repro.mining`), streaming
   baselines (:mod:`repro.streaming`), and the differential-privacy bridge
   (:mod:`repro.privacy`) that Sections 1-2 of the paper situate the results
   against, plus the experiment harness (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import (BinaryDatabase, Itemset, SketchParams,
                       SubsampleSketcher, Task)

    db = BinaryDatabase(np.random.default_rng(0).random((10_000, 32)) < 0.3)
    params = SketchParams(n=db.n, d=db.d, k=2, epsilon=0.05, delta=0.05)
    sketch = SubsampleSketcher(Task.FOREACH_ESTIMATOR).sketch(db, params, rng=0)
    print(sketch.estimate(Itemset([0, 1])), sketch.size_in_bits())
"""

from ._version import __version__
from .db import (
    BinaryDatabase,
    FrequencyOracle,
    Itemset,
    PackedColumns,
    all_itemsets,
    market_basket_database,
    planted_database,
    random_database,
)
from .core import (
    BestOfNaiveSketcher,
    FrequencySketch,
    ReleaseAnswersSketcher,
    ReleaseDbSketcher,
    Sketcher,
    SubsampleSketcher,
    Task,
    lower_bound_bits,
    upper_bound_bits,
    validate_sketcher,
)
from .errors import (
    DecodingError,
    ParameterError,
    ReproError,
    SketchSizeError,
    WireFormatError,
)
from .params import SketchParams

__all__ = [
    "__version__",
    "BinaryDatabase",
    "Itemset",
    "FrequencyOracle",
    "PackedColumns",
    "all_itemsets",
    "random_database",
    "planted_database",
    "market_basket_database",
    "Task",
    "Sketcher",
    "FrequencySketch",
    "ReleaseDbSketcher",
    "ReleaseAnswersSketcher",
    "SubsampleSketcher",
    "BestOfNaiveSketcher",
    "upper_bound_bits",
    "lower_bound_bits",
    "validate_sketcher",
    "SketchParams",
    "ReproError",
    "ParameterError",
    "DecodingError",
    "SketchSizeError",
    "WireFormatError",
]
