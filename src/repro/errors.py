"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class.  The two most important subclasses mirror the two
ways the paper's machinery can be misused:

* :class:`ParameterError` -- a construction or algorithm was invoked outside
  the parameter regime its theorem requires (for example Theorem 13 requires
  ``1/epsilon <= C(d/2, k-1)``).
* :class:`DecodingError` -- a decoder (error-correcting code, reconstruction
  attack, LP decoder) could not produce a valid output, typically because the
  input was corrupted beyond the guaranteed radius.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """Raised when parameters violate a theorem's stated preconditions.

    The message always names the violated precondition so that experiment
    sweeps can report *why* a configuration was skipped.
    """


class DecodingError(ReproError):
    """Raised when a decoder cannot recover a codeword or payload.

    Error-correcting codes raise this when the corruption exceeds the
    guaranteed decoding radius; reconstruction attacks raise it when the
    sketch under attack returned answers inconsistent with every candidate
    database.
    """


class SketchSizeError(ReproError):
    """Raised when a sketch cannot be serialized or its size accounted."""


class WireFormatError(ReproError):
    """Raised when a serialized sketch frame cannot be decoded.

    Covers every way a payload can be unusable: bad magic, unsupported
    wire version, unknown codec, truncated or oversized buffers, checksum
    mismatches, and payloads whose declared bit count disagrees with their
    byte length.  The message names the first violated invariant.
    """


class StreamError(ReproError):
    """Raised by streaming summaries on invalid updates or queries."""


class ProtocolError(ReproError):
    """Raised when a sketch-server protocol message cannot be parsed.

    The transport-level sibling of :class:`WireFormatError`: covers
    malformed request/response bodies, unknown opcodes, oversized
    messages, and truncated fields.  The server answers a request that
    raises this with an error response (or drops the connection when the
    framing itself is no longer trustworthy); the registry and every
    other connection are untouched.
    """


class ServerError(ReproError):
    """Raised client-side when the sketch server answers with an error.

    Carries the server's one-line message verbatim: unknown sketch
    names, unmergeable shard types, queries a resident summary cannot
    answer, and request-level protocol violations all surface here.
    """


class ServerBusyError(ServerError):
    """Raised client-side when the server sheds load with a ``BUSY`` response.

    Unlike a plain :class:`ServerError` (which is definitive -- the server
    evaluated the request and rejected it), ``BUSY`` means the request was
    never looked at: the connection cap was reached.  The condition is
    transient, so retry policies treat it as retryable even for mutating
    operations.
    """


class PersistenceError(ReproError):
    """Raised when a ``--data-dir`` WAL or snapshot cannot be trusted.

    Covers bad magic, unsupported persistence versions, CRC mismatches,
    out-of-order sequence numbers, and oversized records.  A torn *final*
    WAL record (the file ends mid-record, as a crash during append leaves
    it) is **not** an error -- recovery drops the tail; anything else means
    the log was corrupted in place and the server refuses to start rather
    than serve a silently wrong registry.
    """
