"""The paper's lower bounds as executable constructions and attacks.

Each theorem's proof is realised as a :class:`~repro.lowerbounds.encoding.
DatabaseEncoding`: an encoder from arbitrary payload bits to a hard
database, plus a decoder that recovers the payload purely through a
sketch's query interface.  Running :func:`run_encoding_attack` against any
valid sketcher demonstrates the encoding argument end to end and yields the
Fano bound the paper's "basic information theory" step asserts.
"""

from .de12 import DeConstruction
from .encoding import AttackReport, DatabaseEncoding, run_encoding_attack
from .fact18 import ShatteredSet, shattered_set, w_matrix, y_matrix
from .krsu import KrsuConstruction
from .lemma19 import Lemma19Decoder, all_patterns, indicator_answers
from .thm13 import Theorem13Encoding
from .thm14 import SketchIndexProtocol, index_instance_size
from .thm15 import AmplifiedTheorem15Encoding, Theorem15Encoding
from .thm16 import Theorem16Encoding, lemma21_decode
from .thm17 import MedianBoostSketch, MedianBoostSketcher, copies_needed

__all__ = [
    "DatabaseEncoding",
    "AttackReport",
    "run_encoding_attack",
    "ShatteredSet",
    "shattered_set",
    "w_matrix",
    "y_matrix",
    "Theorem13Encoding",
    "SketchIndexProtocol",
    "index_instance_size",
    "Lemma19Decoder",
    "all_patterns",
    "indicator_answers",
    "Theorem15Encoding",
    "AmplifiedTheorem15Encoding",
    "DeConstruction",
    "KrsuConstruction",
    "Theorem16Encoding",
    "lemma21_decode",
    "MedianBoostSketch",
    "MedianBoostSketcher",
    "copies_needed",
]
