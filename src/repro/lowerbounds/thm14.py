"""Theorem 14: the INDEX reduction for For-Each indicator sketches.

Any For-Each-Itemset-Frequency-Indicator sketch yields a one-way protocol
for INDEX on ``N = (d/2) * (1/epsilon)`` bits: Alice encodes her vector
``x`` as the Theorem 13 database ``D_x``, sends the sketch ``S(D_x)``, and
Bob answers his index ``y`` by querying the itemset ``T_y``.  Correctness
of the sketch (per query, probability ``1 - delta``) makes the protocol
correct, so Ablayev's Omega(N) bound on INDEX transfers to the sketch size.

:class:`SketchIndexProtocol` wires a concrete sketcher into the protocol;
its measured communication is exactly ``sketch.size_in_bits()``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..comm.protocol import OneWayProtocol
from ..core.base import Sketcher, Task
from ..errors import ParameterError
from .thm13 import Theorem13Encoding

__all__ = ["SketchIndexProtocol", "index_instance_size"]


def index_instance_size(d: int, m: int) -> int:
    """``N = (d/2) * m``: the INDEX length realized by the reduction."""
    if d < 4 or d % 2:
        raise ParameterError(f"d must be even and >= 4, got {d}")
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    return (d // 2) * m


class SketchIndexProtocol(OneWayProtocol):
    """One-way INDEX protocol built from a For-Each indicator sketcher.

    Parameters
    ----------
    sketcher:
        Any sketcher configured for :attr:`Task.FOREACH_INDICATOR` (other
        tasks also work; For-Each indicator is the theorem's setting).
    d, k, m:
        Theorem 13 construction parameters; the INDEX instance has
        ``N = (d/2) * m`` bits and the sketch targets ``epsilon = 1/m``.
    delta:
        Failure probability budgeted to the sketch.
    """

    def __init__(
        self, sketcher: Sketcher, d: int, k: int, m: int, delta: float = 0.1
    ) -> None:
        self.encoding = Theorem13Encoding(d, k, m)
        self.sketcher = sketcher
        self.delta = delta
        self.n_index = index_instance_size(d, m)

    def alice_message(self, x: Any, rng: np.random.Generator) -> tuple[Any, int]:
        """Alice: encode ``x`` as ``D_x``, sketch it, send the sketch."""
        bits = np.asarray(x, dtype=bool).reshape(-1)
        if bits.size != self.n_index:
            raise ParameterError(f"x must have {self.n_index} bits, got {bits.size}")
        db = self.encoding.encode(bits)
        sketch = self.sketcher.sketch(db, self.encoding.sketch_params(self.delta), rng)
        return sketch, sketch.size_in_bits()

    def bob_output(self, message: tuple[Any, int], y: Any) -> bool:
        """Bob: map his index to ``T_y`` and query the sketch."""
        sketch, _ = message
        index = int(y)
        if not 0 <= index < self.n_index:
            raise ParameterError(f"index must lie in [0, {self.n_index}), got {index}")
        half = self.encoding.d // 2
        row, col = divmod(index, half)
        return sketch.indicate(self.encoding.query_itemset(row, col))

    def target(self, x: Any, y: Any) -> bool:
        """INDEX: the ``y``-th bit of ``x``."""
        return bool(np.asarray(x, dtype=bool).reshape(-1)[int(y)])
