"""Theorem 13's hard family: the Omega(d / epsilon) indicator bound.

The construction (Section 3.2.1): ``m = 1/epsilon`` distinct rows over
``d`` attributes.  Row ``i``'s first ``d/2`` columns hold a *unique*
``(k-1)``-subset ``S_i`` of the first ``d/2`` attributes (possible as long
as ``1/epsilon <= C(d/2, k-1)``); the last ``d/2`` columns are a free
payload.  For the k-itemset ``T_{i,j} = S_i ∪ {j}`` (``j`` in the second
half):

* payload bit ``(i, j) = 1``  ==>  ``f_{T_{i,j}} = 1/m = epsilon``,
* payload bit ``(i, j) = 0``  ==>  ``f_{T_{i,j}} = 0 < epsilon/2``,

so an indicator sketch's answers spell out all ``d/(2 epsilon)`` payload
bits, and Fano gives the Omega(d/epsilon) bound.

Definitional fine print: Definition 1 leaves answers for
``f in [eps/2, eps]`` unconstrained, and the 1-bits here sit exactly at
``f = eps``.  The paper reads the definition as "``f >= eps`` answers 1"
(its proof states ``f_T >= eps  iff  D(i,j) = 1``); we follow it, and note
that every reasonable sketch -- including all three naive algorithms --
answers 1 at ``f = eps`` with high probability.  Instantiating the class
with ``duplications >= 2`` and a sketch ``epsilon`` of ``1/(2m)`` removes
the edge case entirely at the cost of a factor 2 in the bound.
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..core.base import FrequencySketch
from ..db.database import BinaryDatabase
from ..db.itemset import Itemset, unrank_itemset
from ..errors import ParameterError
from ..params import SketchParams
from .encoding import DatabaseEncoding

__all__ = ["Theorem13Encoding"]


class Theorem13Encoding(DatabaseEncoding):
    """Encoder/decoder pair realizing Theorem 13's hard distribution.

    Parameters
    ----------
    d:
        Number of attributes (must be even; halves are ID / payload).
    k:
        Itemset size, ``k >= 2``.
    m:
        Number of distinct rows; the bound targets sketches with
        ``epsilon = 1/m``.  Requires ``m <= C(d/2, k-1)``.
    duplications:
        Each distinct row is repeated this many times (``n = m *
        duplications``), mirroring the ``n >= 1/epsilon`` clause.
    """

    def __init__(self, d: int, k: int, m: int, duplications: int = 1) -> None:
        if d < 4 or d % 2:
            raise ParameterError(f"d must be even and >= 4, got {d}")
        if k < 2:
            raise ParameterError(f"Theorem 13 needs k >= 2, got {k}")
        if k - 1 > d // 2:
            raise ParameterError(f"k-1={k - 1} exceeds d/2={d // 2} attributes")
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        if duplications < 1:
            raise ParameterError(f"duplications must be >= 1, got {duplications}")
        capacity = comb(d // 2, k - 1)
        if m > capacity:
            raise ParameterError(
                f"m={m} exceeds C(d/2, k-1)={capacity}: cannot give each row "
                f"a unique ID itemset (the theorem's 1/eps <= C(d/2, k-1) clause)"
            )
        self.d = d
        self.k = k
        self.m = m
        self.duplications = duplications
        self._half = d // 2
        # Unique ID (k-1)-subsets of the first d/2 attributes, by colex rank.
        self._ids = [unrank_itemset(i, k - 1) for i in range(m)]

    # ------------------------------------------------------------------
    # DatabaseEncoding interface.
    # ------------------------------------------------------------------
    @property
    def payload_bits(self) -> int:
        """``m * d/2`` free bits -- ``d/(2 epsilon)`` at ``epsilon = 1/m``."""
        return self.m * self._half

    @property
    def epsilon(self) -> float:
        """The frequency threshold the construction targets: ``1/m``."""
        return 1.0 / self.m

    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """Parameters of the sketch under attack (``epsilon = 1/m``)."""
        return SketchParams(
            n=self.m * self.duplications,
            d=self.d,
            k=self.k,
            epsilon=self.epsilon,
            delta=delta,
        )

    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Build the database: unique ID halves plus payload halves."""
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        if bits.size != self.payload_bits:
            raise ParameterError(
                f"payload must have {self.payload_bits} bits, got {bits.size}"
            )
        rows = np.zeros((self.m, self.d), dtype=bool)
        for i, ident in enumerate(self._ids):
            rows[i, list(ident.items)] = True
            rows[i, self._half :] = bits[i * self._half : (i + 1) * self._half]
        db = BinaryDatabase(rows)
        if self.duplications > 1:
            db = db.repeat_rows(self.duplications)
        return db

    def query_itemset(self, row: int, column: int) -> Itemset:
        """``T_{i,j} = S_i ∪ {d/2 + j}`` for payload position ``(i, j)``."""
        if not 0 <= row < self.m:
            raise ParameterError(f"row must lie in [0, {self.m}), got {row}")
        if not 0 <= column < self._half:
            raise ParameterError(f"column must lie in [0, {self._half}), got {column}")
        return self._ids[row].union([self._half + column])

    def decode(self, sketch: FrequencySketch) -> np.ndarray:
        """Read every payload bit off the sketch's indicator answers."""
        out = np.zeros(self.payload_bits, dtype=bool)
        for i in range(self.m):
            for j in range(self._half):
                out[i * self._half + j] = sketch.indicate(self.query_itemset(i, j))
        return out

    def exact_frequencies(self, payload: np.ndarray) -> np.ndarray:
        """Ground-truth ``f_{T_{i,j}}`` for each payload bit (tests)."""
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        return np.where(bits, self.epsilon, 0.0)
