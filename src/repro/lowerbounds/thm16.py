"""Theorem 16: the amplified Omega~(k d log(d/k) / eps^2) estimator bound.

The composition (Section 4.1.2): take Fact 18's shattered strings
``x_1..x_v`` over ``d_shatter`` attributes (realizing patterns with
``(k-c)``-itemsets) and ``v`` independent payloads, each encoded as a De
database ``D_i`` with c-itemset queries.  Block ``i`` of the big database
prefixes every row of ``D_i`` with ``x_i``.  For an inner c-itemset ``T``
and a pattern ``s``, the k-itemset ``T'(T, s) = T_s ∪ shift(T)`` has

    ``f_{T'}(D) = <s, z_T> / v``,   where ``z_T = (f_T(D_1), .., f_T(D_v))``

-- equation (6)-(9) of the paper.  Lemma 21 turns ``+/- eps`` estimates of
those inner products (over all ``2^v`` patterns) into a vector ``z_hat_T``
with *average* error at most ``4 eps``, which is exactly the accuracy
regime De's L1 decoder tolerates; each block's payload then comes back via
:class:`~repro.lowerbounds.de12.DeConstruction`.

The net effect: one For-All estimator sketch encodes ``v`` independent De
payloads, multiplying the Omega~(d / eps^2) base bound by
``v ~ k log(d/k)``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..core.base import FrequencySketch
from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import DecodingError, ParameterError
from ..params import SketchParams
from .de12 import DeConstruction
from .encoding import DatabaseEncoding
from .fact18 import ShatteredSet
from .lemma19 import all_patterns

__all__ = ["lemma21_decode", "Theorem16Encoding"]


def lemma21_decode(answers: np.ndarray, v: int, eps: float) -> np.ndarray:
    """Lemma 21: recover ``z in [0,1]^v`` from noisy subset averages.

    Given estimates ``f_hat_s ~ <s, z>/v`` (one per pattern ``s``, each
    within ``eps``), find any ``z_hat in [0,1]^v`` with
    ``|<z_hat, s>/v - f_hat_s| <= eps`` for all ``s``; the lemma shows any
    such vector has ``||z_hat - z||_1 / v <= 4 eps``.  Implemented as a
    minimax LP (minimize the largest violation ``tau``), so it degrades
    gracefully when the answers are slightly worse than ``eps``: the
    returned vector satisfies the constraints at the smallest feasible
    ``tau`` and inherits the bound with ``eps`` replaced by ``tau``.

    Parameters
    ----------
    answers:
        Length ``2^v``, ordered like :func:`~repro.lowerbounds.lemma19.
        all_patterns`.
    """
    f_hat = np.asarray(answers, dtype=float).reshape(-1)
    patterns = all_patterns(v).astype(float)
    if f_hat.size != patterns.shape[0]:
        raise ParameterError(
            f"need {patterns.shape[0]} answers (one per pattern), got {f_hat.size}"
        )
    # Variables: [z (v), tau (1)]; minimize tau subject to
    #   <z, s>/v - tau <= f_hat_s + eps   and   -<z, s>/v - tau <= -(f_hat_s - eps).
    n_rows = patterns.shape[0]
    cost = np.concatenate([np.zeros(v), [1.0]])
    upper = np.hstack([patterns / v, -np.ones((n_rows, 1))])
    lower = np.hstack([-patterns / v, -np.ones((n_rows, 1))])
    a_ub = np.vstack([upper, lower])
    b_ub = np.concatenate([f_hat + eps, -(f_hat - eps)])
    bounds = [(0.0, 1.0)] * v + [(0.0, None)]
    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise DecodingError(f"Lemma 21 LP failed: {result.message}")
    return result.x[:v]


class Theorem16Encoding(DatabaseEncoding):
    """The full Theorem 16 composition: Fact 18 x De databases.

    Parameters
    ----------
    d_shatter:
        Attributes of the shattered prefix block.
    c:
        Inner query size (the paper's constant ``c >= 2``).
    k:
        Total query size; inner itemsets use ``c`` attributes and patterns
        use ``k - c``, so ``k > c``.
    d0, n_inner:
        De-construction parameters for every block (one construction is
        drawn and shared, mirroring the paper's public ``D_0``).
    epsilon:
        Accuracy of the For-All estimator sketch under attack.
    """

    def __init__(
        self,
        d_shatter: int,
        c: int,
        k: int,
        d0: int,
        n_inner: int,
        epsilon: float,
        use_ecc: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if c < 2:
            raise ParameterError(f"Theorem 16 needs c >= 2, got {c}")
        if k <= c:
            raise ParameterError(f"need k > c, got k={k}, c={c}")
        self.shattered = ShatteredSet(d_shatter, k - c)
        self.v = self.shattered.v
        if self.v > 14:
            raise ParameterError(
                f"v={self.v} patterns are infeasible to enumerate; shrink d_shatter"
            )
        # The inner databases answer c-itemset queries to (amplified) error;
        # the inner sketch parameter records the tolerance Lemma 21 passes on.
        self.inner = DeConstruction(
            d0=d0,
            k=c,
            n=n_inner,
            epsilon=min(0.49, 4 * epsilon * self.v),
            use_ecc=use_ecc,
            rng=rng,
        )
        self.d_shatter = d_shatter
        self.c = c
        self.k = k
        self.epsilon = epsilon

    @property
    def payload_bits(self) -> int:
        """``v`` independent inner payloads."""
        return self.v * self.inner.payload_bits

    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """``(n = v * n_inner, d = d_shatter + d_inner, k, eps, delta)``."""
        return SketchParams(
            n=self.v * self.inner.n,
            d=self.d_shatter + self.inner.d_total,
            k=self.k,
            epsilon=self.epsilon,
            delta=delta,
        )

    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Stack ``[x_i prefix | D_i]`` for each of the v inner payloads."""
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        if bits.size != self.payload_bits:
            raise ParameterError(
                f"payload must have {self.payload_bits} bits, got {bits.size}"
            )
        per = self.inner.payload_bits
        blocks = []
        for i in range(self.v):
            inner_db = self.inner.encode(bits[i * per : (i + 1) * per])
            prefix = np.tile(self.shattered.matrix[i], (inner_db.n, 1))
            blocks.append(np.hstack([prefix, inner_db.rows]))
        return BinaryDatabase(np.vstack(blocks))

    def outer_query(self, pattern: np.ndarray, inner_itemset: Itemset) -> Itemset:
        """``T'(T, s) = T_s ∪ shift(T, d_shatter)`` -- a k-itemset."""
        t_s = self.shattered.itemset_for_pattern(pattern)
        return t_s.union(inner_itemset.shift(self.d_shatter))

    def recover_inner_answers(self, sketch: FrequencySketch) -> np.ndarray:
        """Lemma 21 for every inner query: ``z_hat[sj, ti, i] ~ f_T(D_i)``."""
        patterns = all_patterns(self.v)
        n_tuples = len(self.inner.tuples)
        z_hat = np.zeros((self.inner.n_special, n_tuples, self.v))
        for ti, sj, inner_itemset in self.inner.iter_queries():
            estimates = np.array(
                [
                    sketch.estimate(self.outer_query(s, inner_itemset))
                    for s in patterns
                ]
            )
            z_hat[sj, ti] = lemma21_decode(estimates, self.v, self.epsilon)
        return z_hat

    def decode(self, sketch: FrequencySketch) -> np.ndarray:
        """Recover all ``v`` inner payloads through Lemma 21 + De decoding."""
        z_hat = self.recover_inner_answers(sketch)
        per = self.inner.payload_bits
        out = np.zeros(self.payload_bits, dtype=bool)
        for i in range(self.v):
            answers = z_hat[:, :, i]
            try:
                block = self.inner.decode_from_answers(answers, method="l1")
            except DecodingError:
                # The paper's Markov argument allows a small fraction of
                # blocks to fail; report zeros for those bits rather than
                # aborting the whole attack.
                block = np.zeros(per, dtype=bool)
            out[i * per : (i + 1) * per] = block
        return out
