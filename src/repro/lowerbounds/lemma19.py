"""Lemma 19: reconstructing a bit vector from threshold inner products.

Setting: an unknown ``t in {0,1}^v``; for patterns ``s in {0,1}^v`` we
receive bits ``b_s`` from a valid indicator sketch, so

* ``<s, t>/v > eps``    forces ``b_s = 1``,
* ``<s, t>/v < eps/2``  forces ``b_s = 0``,
* anything in between is unconstrained.

Lemma 19 says any ``t'`` *consistent* with all the ``b_s`` is within
Hamming distance ``v/25`` of ``t`` (for ``eps = 1/50``; the argument gives
``2 eps v`` for general ``eps``).  Because the gray zone makes the paper's
literal consistency test unsatisfiable by ``t`` itself in adversarial
cases, we use the standard *weak* (non-contradiction) form, which ``t``
always satisfies and which yields the same distance bound:

* ``b_s = 1``  requires  ``<s, t'>/v >= eps/2``,
* ``b_s = 0``  requires  ``<s, t'> / v <= eps``.

(The proof of the ``2 eps v`` bound under weak consistency is in the
docstring of :meth:`Lemma19Decoder.decode`, mirroring the paper's.)

Two decoding regimes:

* ``eps * v < 1`` (always the case in our Theorem 15 instantiations):
  singleton patterns pin every bit exactly -- ``t_i = 1`` gives
  ``<e_i, t>/v = 1/v > eps`` hence ``b = 1``; ``t_i = 0`` gives frequency
  0 hence ``b = 0``.  Decoding is exact and takes ``v`` queries.
* general ``eps``: exhaustive search over all ``2^v`` candidates against
  all ``2^v`` constraints, fully vectorised (practical to ``v ~ 14``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import DecodingError, ParameterError

__all__ = ["Lemma19Decoder", "all_patterns", "indicator_answers"]


def all_patterns(v: int) -> np.ndarray:
    """All ``2^v`` binary patterns as a ``(2^v, v)`` boolean matrix.

    Row ``i`` spells ``i`` in binary, most significant bit first, so the
    ordering is deterministic and testable.
    """
    if v < 1:
        raise ParameterError(f"v must be >= 1, got {v}")
    if v > 20:
        raise ParameterError(f"refusing to materialize 2^{v} patterns")
    ints = np.arange(1 << v, dtype=np.int64)
    return ((ints[:, None] >> np.arange(v - 1, -1, -1)[None, :]) & 1).astype(bool)


def indicator_answers(t: np.ndarray, eps: float) -> np.ndarray:
    """Honest sketch answers ``b_s`` for every pattern (``f > eps`` rule).

    Generates the bits an *exact* indicator oracle would return: 1 iff
    ``<s, t>/v > eps`` -- with the gray zone ``[eps/2, eps]`` resolved to 0.
    Tests use other resolutions to exercise the decoder's robustness.
    """
    vec = np.asarray(t, dtype=bool).reshape(-1)
    patterns = all_patterns(vec.size)
    inner = patterns @ vec.astype(np.int64)
    return inner / vec.size > eps


class Lemma19Decoder:
    """Reconstruct ``t`` (up to ``2 eps v`` errors) from indicator bits.

    Parameters
    ----------
    v:
        Length of the unknown vector.
    eps:
        The indicator threshold the answering sketch used.
    max_exhaustive_v:
        Guard for the ``2^v x 2^v`` search (memory/time).
    """

    def __init__(self, v: int, eps: float, max_exhaustive_v: int = 14) -> None:
        if v < 1:
            raise ParameterError(f"v must be >= 1, got {v}")
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must lie in (0, 1), got {eps}")
        self.v = v
        self.eps = eps
        self.max_exhaustive_v = max_exhaustive_v

    @property
    def guaranteed_distance(self) -> int:
        """Lemma 19's bound on the Hamming error: ``floor(2 eps v)``.

        ``0`` in the singleton regime (``eps v < 1``): recovery is exact
        there because a single disagreeing coordinate already violates a
        singleton constraint.
        """
        if self.eps * self.v < 1:
            return 0
        return int(2 * self.eps * self.v)

    @property
    def uses_singletons(self) -> bool:
        """Whether the exact singleton shortcut applies (``eps v < 1``)."""
        return self.eps * self.v < 1

    # ------------------------------------------------------------------
    # Decoding.
    # ------------------------------------------------------------------
    def decode_with_oracle(self, answer: Callable[[np.ndarray], bool]) -> np.ndarray:
        """Decode by querying ``answer(s)`` for the patterns the regime needs.

        In the singleton regime this issues ``v`` queries; otherwise it
        issues all ``2^v`` and runs the consistency search.
        """
        if self.uses_singletons:
            out = np.zeros(self.v, dtype=bool)
            for i in range(self.v):
                pattern = np.zeros(self.v, dtype=bool)
                pattern[i] = True
                out[i] = bool(answer(pattern))
            return out
        patterns = all_patterns(self.v)
        bits = np.array([bool(answer(s)) for s in patterns], dtype=bool)
        return self.decode(bits)

    def decode(self, answers: np.ndarray) -> np.ndarray:
        """Find a weakly consistent ``t'`` given all ``2^v`` answer bits.

        Weak consistency: ``b_s = 1 => <s,t'> >= eps v / 2`` and
        ``b_s = 0 => <s,t'> <= eps v``.  The true ``t`` always satisfies
        this when the answers came from a valid sketch.  Any satisfying
        ``t'`` is within ``2 eps v`` of ``t``: if they differed on more
        than ``2 eps v`` coordinates, one direction of disagreement has a
        set ``S`` with ``|S| > eps v``; taking ``s = 1_S``, either
        ``<s,t> = 0`` (so ``b_s = 0``, yet ``<s,t'> > eps v`` -- violation)
        or ``<s,t> > eps v`` (so ``b_s = 1``, yet ``<s,t'> = 0`` --
        violation).

        Raises
        ------
        DecodingError
            If no candidate is consistent (the answers did not come from a
            valid sketch run).
        ParameterError
            If ``v`` exceeds the exhaustive-search guard.
        """
        if self.v > self.max_exhaustive_v:
            raise ParameterError(
                f"exhaustive decoding guarded at v <= {self.max_exhaustive_v}, "
                f"got v={self.v}; use decode_with_oracle in the singleton regime"
            )
        bits = np.asarray(answers, dtype=bool).reshape(-1)
        patterns = all_patterns(self.v)
        if bits.size != patterns.shape[0]:
            raise ParameterError(
                f"need {patterns.shape[0]} answers (one per pattern), got {bits.size}"
            )
        threshold_hi = self.eps * self.v  # b=0 constraint: inner <= this
        threshold_lo = self.eps * self.v / 2.0  # b=1 constraint: inner >= this
        ones = patterns[bits]
        zeros = patterns[~bits]
        candidates = all_patterns(self.v).astype(np.int16)
        # Process candidates in chunks to bound memory.
        chunk = max(1, (1 << 22) // max(patterns.shape[0], 1))
        for start in range(0, candidates.shape[0], chunk):
            block = candidates[start : start + chunk]
            ok = np.ones(block.shape[0], dtype=bool)
            if ones.size:
                inner_one = block @ ones.astype(np.int16).T
                ok &= (inner_one >= threshold_lo - 1e-9).all(axis=1)
            if zeros.size:
                inner_zero = block @ zeros.astype(np.int16).T
                ok &= (inner_zero <= threshold_hi + 1e-9).all(axis=1)
            hits = np.flatnonzero(ok)
            if hits.size:
                return block[hits[0]].astype(bool)
        raise DecodingError(
            "no candidate vector is consistent with the given answers"
        )
