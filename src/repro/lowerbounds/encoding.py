"""The encoding-argument framework (Section 1.4).

Every lower bound in the paper has the same constructive skeleton:

1. an **encoder** maps an arbitrary payload bit string into a database drawn
   from a hard family;
2. any valid sketch of that database can be **attacked**: a decoder drives
   the sketch's query procedure and reconstructs the payload;
3. information theory then forces the sketch to be at least as large as the
   payload (up to the ``1 - H(delta)`` Fano factor).

:class:`DatabaseEncoding` is the abstract encoder/decoder pair;
:func:`run_encoding_attack` executes the whole pipeline against a concrete
sketcher and reports payload size, sketch size, recovery accuracy, and the
implied Fano bound -- the numbers the E-T13/E-T15/E-T16 benchmarks print.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..analysis.entropy import fano_lower_bound
from ..analysis.hamming import hamming_distance
from ..core.base import FrequencySketch, Sketcher
from ..db.database import BinaryDatabase
from ..db.generators import as_rng
from ..errors import ParameterError
from ..params import SketchParams

__all__ = ["DatabaseEncoding", "AttackReport", "run_encoding_attack"]


class DatabaseEncoding(ABC):
    """An encoder from payload bits to hard databases, with a sketch attack.

    Subclasses fix the hard family of one theorem.  The contract:

    * :attr:`payload_bits` payload bits go in;
    * :meth:`encode` produces a database whose shape matches
      :meth:`sketch_params`;
    * :meth:`decode` recovers the payload *only* through the sketch's
      public query interface (never touching the database).
    """

    @property
    @abstractmethod
    def payload_bits(self) -> int:
        """Number of arbitrary bits the construction encodes."""

    @abstractmethod
    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """The ``(n, d, k, epsilon, delta)`` the attacked sketch must target."""

    @abstractmethod
    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Build the hard database carrying ``payload``."""

    @abstractmethod
    def decode(self, sketch: FrequencySketch) -> np.ndarray:
        """Reconstruct the payload by querying the sketch."""

    def random_payload(
        self, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """A uniform payload (the high-entropy distribution of Section 1.4)."""
        gen = as_rng(rng)
        return gen.random(self.payload_bits) < 0.5


@dataclass(frozen=True)
class AttackReport:
    """Result of one encode -> sketch -> decode round trip.

    Attributes
    ----------
    payload_bits:
        Bits encoded into the database.
    sketch_bits:
        Measured size of the attacked sketch.
    bit_errors:
        Hamming distance between payload and reconstruction.
    exact:
        Whether recovery was perfect.
    fano_bound_bits:
        The sketch size any algorithm would need to allow this recovery
        rate, per Fano (computed with the attacked sketch's ``delta``).
    """

    payload_bits: int
    sketch_bits: int
    bit_errors: int
    exact: bool
    fano_bound_bits: float

    @property
    def error_fraction(self) -> float:
        """``bit_errors / payload_bits``."""
        return self.bit_errors / max(self.payload_bits, 1)


def run_encoding_attack(
    encoding: DatabaseEncoding,
    sketcher: Sketcher,
    delta: float = 0.1,
    payload: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
) -> AttackReport:
    """Execute the full encoding argument against a concrete sketcher.

    Draws a payload (uniform unless given), encodes it, sketches the
    database with ``sketcher``, decodes through the sketch, and reports the
    bit-level outcome together with the Fano bound.

    Raises
    ------
    ParameterError
        If the supplied payload has the wrong length.
    """
    gen = as_rng(rng)
    if payload is None:
        payload = encoding.random_payload(gen)
    payload = np.asarray(payload, dtype=bool).reshape(-1)
    if payload.size != encoding.payload_bits:
        raise ParameterError(
            f"payload must have {encoding.payload_bits} bits, got {payload.size}"
        )
    params = encoding.sketch_params(delta)
    db = encoding.encode(payload)
    if (db.n, db.d) != (params.n, params.d):
        raise ParameterError(
            f"encoder produced shape {db.shape}, expected {(params.n, params.d)}"
        )
    sketch = sketcher.sketch(db, params, gen)
    recovered = np.asarray(encoding.decode(sketch), dtype=bool).reshape(-1)
    if recovered.size != payload.size:
        raise ParameterError(
            f"decoder returned {recovered.size} bits, expected {payload.size}"
        )
    errors = hamming_distance(payload, recovered)
    return AttackReport(
        payload_bits=int(payload.size),
        sketch_bits=sketch.size_in_bits(),
        bit_errors=errors,
        exact=errors == 0,
        fano_bound_bits=fano_lower_bound(int(payload.size), delta),
    )
