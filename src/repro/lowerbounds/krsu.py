"""The KRSU reconstruction attack (Section 4.1.1).

Kasiviswanathan-Rudelson-Smith-Ullman reconstruct the *last column* of a
database from ``+/- eps`` answers to all k-itemset frequency queries via
least squares against the matrix ``M^(k)`` derived from the other columns.
In this library that is exactly :class:`~repro.lowerbounds.de12.
DeConstruction` with a single special column, no error-correcting code,
and the L2 decoder -- which is how :class:`KrsuConstruction` is defined.

The E-KRSU benchmark sweeps ``eps * sqrt(n)`` to exhibit the phase
transition the section describes: reconstruction succeeds while
``eps <~ sqrt(n)/n`` (i.e. ``n <~ 1/eps^2``) and degrades beyond it, which
is precisely why the For-All estimator bound carries a ``1/eps^2``.
"""

from __future__ import annotations

import numpy as np

from ..core.base import FrequencySketch
from .de12 import DeConstruction

__all__ = ["KrsuConstruction"]


class KrsuConstruction(DeConstruction):
    """Single-special-column, L2-decoded variant of De's construction.

    Parameters match :class:`~repro.lowerbounds.de12.DeConstruction`
    except that ``n_special`` is fixed to 1 and payloads are raw ``n``-bit
    vectors (KRSU reconstructs the column directly, no outer code).
    """

    def __init__(
        self,
        d0: int,
        k: int,
        n: int,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        ensure_probing_rows: bool = True,
    ) -> None:
        super().__init__(
            d0=d0,
            k=k,
            n=n,
            epsilon=epsilon,
            n_special=1,
            use_ecc=False,
            rng=rng,
            ensure_probing_rows=ensure_probing_rows,
        )

    def decode(self, sketch: FrequencySketch, method: str = "l2") -> np.ndarray:
        """KRSU's attack: least-squares reconstruction by default."""
        return super().decode(sketch, method=method)
