"""Fact 18: shattered sets for k'-itemset frequency queries (Appendix A).

Fact 18 states: for ``v = k' log(d/k')`` there are strings
``x_1, ..., x_v in {0,1}^d`` such that *every* pattern ``s in {0,1}^v`` is
realised by some k'-itemset ``T_s``: ``f_{T_s}(x_i) = s_i`` for all ``i``.
(The rows are shattered by the query class -- this is its VC dimension.)

The construction glues two gadgets (Appendix A):

* ``W^(k')``: the all-ones matrix minus the identity; the itemset
  ``T_s = {i : s_i = 0}`` realises any pattern on its rows.
* ``Y^(p)``: the ``log2(p) x p`` matrix whose column ``x`` is the binary
  representation of ``x``; the singleton ``{int(s)}`` realises any pattern.

The glued matrix ``X`` is a ``k' x k'`` grid of blocks: diagonal blocks are
``Y^(p)`` (``p = d/k'``), off-diagonal blocks are all-ones.  The realising
itemset picks exactly one column per block-column: column ``l_a`` inside
block ``a``, where ``l_a`` is the integer read from the a-th group of
``log2(p)`` pattern bits.

For ``d`` not of the form ``k' * 2^j`` we use the largest power of two
``p <= d/k'`` and pad the unused columns with ones (they are never chosen
by any ``T_s``, and padding with ones keeps every pattern realisable even
if callers embed the matrix in wider databases).
"""

from __future__ import annotations

import numpy as np

from ..db.bitmatrix import bits_to_int
from ..db.itemset import Itemset
from ..errors import ParameterError

__all__ = [
    "ShatteredSet",
    "w_matrix",
    "y_matrix",
    "shattered_set",
]


def w_matrix(k: int) -> np.ndarray:
    """The ``k x k`` gadget ``W^(k)``: ones everywhere except the diagonal.

    For any ``s in {0,1}^k``, the itemset ``{i : s_i = 0}`` has
    ``f_T(w_i) = s_i`` (row ``i`` misses only column ``i``).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    return ~np.eye(k, dtype=bool)


def y_matrix(p: int) -> np.ndarray:
    """The ``log2(p) x p`` gadget ``Y^(p)``: column ``x`` spells ``x`` in binary.

    Requires ``p`` a power of two ``>= 2``.  For any ``s in {0,1}^{log2 p}``
    the singleton ``{int(s)}`` has ``f_T(y_i) = s_i``.
    """
    if p < 2 or p & (p - 1):
        raise ParameterError(f"p must be a power of two >= 2, got {p}")
    bits = p.bit_length() - 1
    cols = np.arange(p)
    return np.array(
        [(cols >> (bits - 1 - r)) & 1 for r in range(bits)], dtype=bool
    )


class ShatteredSet:
    """Fact 18's strings ``x_1..x_v`` with the pattern-to-itemset map.

    Parameters
    ----------
    d:
        Number of attributes of the ambient database rows.
    k_prime:
        Itemset size ``k'`` that must realise the patterns; requires
        ``d >= 2 k'``.

    Attributes
    ----------
    v:
        Number of shattered rows, ``k' * log2(p)`` with ``p`` the largest
        power of two at most ``d / k'``.
    matrix:
        The ``(v, d)`` boolean matrix whose rows are ``x_1..x_v``.
    """

    def __init__(self, d: int, k_prime: int) -> None:
        if k_prime < 1:
            raise ParameterError(f"k' must be >= 1, got {k_prime}")
        if d < 2 * k_prime:
            raise ParameterError(
                f"Fact 18 needs d >= 2k' (got d={d}, k'={k_prime})"
            )
        p = 1 << ((d // k_prime).bit_length() - 1)
        if p < 2:
            raise ParameterError(f"d/k' = {d // k_prime} leaves no room for Y blocks")
        self.d = d
        self.k_prime = k_prime
        self.block_width = p
        self.bits_per_block = p.bit_length() - 1
        self.v = k_prime * self.bits_per_block

        y = y_matrix(p)
        rows = np.ones((self.v, d), dtype=bool)
        for a in range(k_prime):
            r0 = a * self.bits_per_block
            c0 = a * p
            # Block-row a: diagonal block (a, a) is Y, everything else stays 1.
            rows[r0 : r0 + self.bits_per_block, :] = True
            rows[r0 : r0 + self.bits_per_block, c0 : c0 + p] = y
        self.matrix = rows
        self.matrix.setflags(write=False)

    def itemset_for_pattern(self, pattern: np.ndarray) -> Itemset:
        """The k'-itemset ``T_s`` realising the given v-bit pattern.

        ``T_s`` picks column ``l_a`` inside block ``a``, where ``l_a`` is
        the integer spelled by pattern bits ``[a b, (a+1) b)``.
        """
        s = np.asarray(pattern, dtype=bool).reshape(-1)
        if s.size != self.v:
            raise ParameterError(f"pattern must have v={self.v} bits, got {s.size}")
        items = []
        for a in range(self.k_prime):
            bits = s[a * self.bits_per_block : (a + 1) * self.bits_per_block]
            items.append(a * self.block_width + bits_to_int(bits))
        return Itemset(items)

    def realized_pattern(self, itemset: Itemset) -> np.ndarray:
        """``(f_T(x_1), ..., f_T(x_v))`` for any itemset (ground truth)."""
        cols = list(itemset.items)
        if cols and max(cols) >= self.d:
            raise ParameterError(f"itemset {itemset} out of range for d={self.d}")
        return self.matrix[:, cols].all(axis=1)

    def verify(self, pattern: np.ndarray) -> bool:
        """Check ``f_{T_s}(x_i) = s_i`` for all i (used by tests/benches)."""
        s = np.asarray(pattern, dtype=bool).reshape(-1)
        return bool(
            np.array_equal(self.realized_pattern(self.itemset_for_pattern(s)), s)
        )


def shattered_set(d: int, k_prime: int) -> ShatteredSet:
    """Convenience constructor matching the paper's ``Fact 18`` phrasing."""
    return ShatteredSet(d, k_prime)
