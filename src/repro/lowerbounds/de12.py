"""De's LP-decodable hard databases (Lemmas 20, 24, 25; Appendix B).

The construction: draw ``k-1`` i.i.d. unbiased 0/1 matrices
``A_1..A_{k-1} in {0,1}^{d0 x n}`` and form their Hadamard (row-tensor)
product ``A`` (``L = d0^{k-1}`` rows).  The *public* part ``D_0`` of the
database has ``n`` rows and ``(k-1) d0`` columns: row ``h`` concatenates
column ``h`` of every ``A_j``.  The payload is appended as
``n_special`` extra columns; column ``j`` carries bits ``[j n, (j+1) n)``
of the (optionally ECC-wrapped) payload (Lemma 25's "special attributes").

For a row-tuple ``i = (i_1, ..., i_{k-1})`` and special column ``j``, the
k-itemset ``{block_1 attr i_1, ..., block_{k-1} attr i_{k-1}, special j}``
has frequency exactly ``<A[i, :], y_j> / n`` where ``y_j`` is the column's
bit vector -- the queries are *linear* in the payload with coefficient
matrix ``A``.  Estimator answers with small average error therefore feed
the L1 (De) or L2 (KRSU) decoders of :mod:`repro.linalg`, and Rudelson's
spectral bound (Lemma 26) is what makes the decoding accurate.

``KrsuConstruction`` (:mod:`repro.lowerbounds.krsu`) is the single-column,
no-ECC special case that Section 4.1.1 attributes to KRSU.
"""

from __future__ import annotations

import numpy as np

from ..coding.concatenated import ConcatenatedCode
from ..core.base import FrequencySketch
from ..db.database import BinaryDatabase
from ..db.generators import as_rng
from ..db.itemset import Itemset
from ..errors import ParameterError
from ..linalg.hadamard import hadamard_product, row_index_tuples
from ..linalg.l1 import l1_reconstruct_bits
from ..linalg.l2 import l2_reconstruct_bits
from ..params import SketchParams
from .encoding import DatabaseEncoding

__all__ = ["DeConstruction"]


class DeConstruction(DatabaseEncoding):
    """Lemma 25's database-generation algorithm ``A_2`` with LP decoding.

    Parameters
    ----------
    d0:
        Attributes per tensor block (and default number of special columns).
    k:
        Query size; ``k - 1`` tensor blocks plus one special attribute.
    n:
        Database rows (the regime of interest is ``n ~ 1/eps^2``).
    epsilon:
        Accuracy of the estimator sketch under attack.
    n_special:
        Number of payload columns (default ``d0``, the paper's choice).
    use_ecc:
        Wrap the payload in the concatenated code when a block fits
        (exact recovery); otherwise store raw bits (approximate recovery).
    rng:
        Randomness for the tensor matrices (the construction is drawn
        once and shared by encoder and decoder, like the paper's public
        ``D_0``).
    ensure_probing_rows:
        Redraw factor-matrix columns that are all-zero in some factor
        (such database rows can never be probed by any tuple query; at the
        paper's scales they vanish w.h.p., at ours they would silently
        erase payload bits).
    """

    def __init__(
        self,
        d0: int,
        k: int,
        n: int,
        epsilon: float,
        n_special: int | None = None,
        use_ecc: bool = True,
        rng: np.random.Generator | int | None = None,
        ensure_probing_rows: bool = True,
    ) -> None:
        if d0 < 2:
            raise ParameterError(f"d0 must be >= 2, got {d0}")
        if k < 2:
            raise ParameterError(f"De's construction needs k >= 2, got {k}")
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        if d0 ** (k - 1) < n:
            raise ParameterError(
                f"Lemma 24 requires d0^(k-1) >= n for the tensor matrix to "
                f"determine the columns; got {d0}^{k - 1} = {d0 ** (k - 1)} < n={n}"
            )
        if not 0.0 < epsilon < 1.0:
            raise ParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.d0 = d0
        self.k = k
        self.n = n
        self.epsilon = epsilon
        self.n_special = d0 if n_special is None else n_special
        if self.n_special < 1:
            raise ParameterError(f"n_special must be >= 1, got {self.n_special}")
        gen = as_rng(rng)
        self.factors = [
            self._draw_factor(gen, ensure_probing_rows) for _ in range(k - 1)
        ]
        self.product = hadamard_product(self.factors)
        self.tuples = row_index_tuples([d0] * (k - 1))
        region = self.n_special * n
        self._region_bits = region
        self._code: ConcatenatedCode | None = None
        if use_ecc:
            best = None
            for m in (5, 6, 7, 8, 9, 10):
                code = ConcatenatedCode(m)
                if code.block_bits <= region:
                    best = code
            self._code = best

    def _draw_factor(
        self, gen: np.random.Generator, ensure: bool
    ) -> np.ndarray:
        mat = (gen.random((self.d0, self.n)) < 0.5).astype(float)
        if ensure:
            for h in range(self.n):
                while mat[:, h].sum() == 0:
                    mat[:, h] = (gen.random(self.d0) < 0.5).astype(float)
        return mat

    # ------------------------------------------------------------------
    # Shape and parameters.
    # ------------------------------------------------------------------
    @property
    def d_public(self) -> int:
        """Width of the public tensor part: ``(k-1) d0``."""
        return (self.k - 1) * self.d0

    @property
    def d_total(self) -> int:
        """Total attributes: public part plus special columns."""
        return self.d_public + self.n_special

    @property
    def uses_ecc(self) -> bool:
        """Whether payloads are ECC-wrapped."""
        return self._code is not None

    @property
    def payload_bits(self) -> int:
        """ECC message bits, or the raw ``n_special * n`` region."""
        if self._code is not None:
            return self._code.message_bits
        return self._region_bits

    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """``(n, d_total, k, epsilon, delta)`` for the sketch under attack."""
        return SketchParams(
            n=self.n, d=self.d_total, k=self.k, epsilon=self.epsilon, delta=delta
        )

    # ------------------------------------------------------------------
    # Encode.
    # ------------------------------------------------------------------
    def public_rows(self) -> np.ndarray:
        """``D_0``: row ``h`` concatenates column ``h`` of every factor."""
        return np.hstack([f.T.astype(bool) for f in self.factors])

    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Append the (coded) payload as special columns to ``D_0``."""
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        if bits.size != self.payload_bits:
            raise ParameterError(
                f"payload must have {self.payload_bits} bits, got {bits.size}"
            )
        region = np.zeros(self._region_bits, dtype=bool)
        if self._code is not None:
            region[: self._code.block_bits] = self._code.encode(bits)
        else:
            region[:] = bits
        special = region.reshape(self.n_special, self.n).T
        return BinaryDatabase(np.hstack([self.public_rows(), special]))

    # ------------------------------------------------------------------
    # Queries and decoding.
    # ------------------------------------------------------------------
    def query_itemset(self, tuple_index: int, special: int) -> Itemset:
        """The k-itemset probing tensor row ``tuple_index``, column ``special``."""
        if not 0 <= tuple_index < len(self.tuples):
            raise ParameterError(
                f"tuple_index must lie in [0, {len(self.tuples)}), got {tuple_index}"
            )
        if not 0 <= special < self.n_special:
            raise ParameterError(
                f"special must lie in [0, {self.n_special}), got {special}"
            )
        items = [
            block * self.d0 + attr for block, attr in enumerate(self.tuples[tuple_index])
        ]
        items.append(self.d_public + special)
        return Itemset(items)

    def iter_queries(self) -> list[tuple[int, int, Itemset]]:
        """All ``L * n_special`` attack queries as (tuple, special, itemset)."""
        return [
            (ti, sj, self.query_itemset(ti, sj))
            for sj in range(self.n_special)
            for ti in range(len(self.tuples))
        ]

    def answers_to_columns(
        self, answers: np.ndarray, method: str = "l1"
    ) -> np.ndarray:
        """LP/least-squares decode the special columns from query answers.

        ``answers[sj, ti]`` is the (approximate) frequency of
        ``query_itemset(ti, sj)``.  Returns the recovered ``(n_special, n)``
        bit matrix.
        """
        arr = np.asarray(answers, dtype=float)
        if arr.shape != (self.n_special, len(self.tuples)):
            raise ParameterError(
                f"answers must have shape {(self.n_special, len(self.tuples))}, "
                f"got {arr.shape}"
            )
        decode = l1_reconstruct_bits if method == "l1" else l2_reconstruct_bits
        if method not in ("l1", "l2"):
            raise ParameterError(f"method must be 'l1' or 'l2', got {method!r}")
        out = np.zeros((self.n_special, self.n), dtype=bool)
        for sj in range(self.n_special):
            out[sj] = decode(self.product, self.n * arr[sj])
        return out

    def decode_from_answers(
        self, answers: np.ndarray, method: str = "l1"
    ) -> np.ndarray:
        """Full payload recovery from an answers matrix (columns then ECC)."""
        columns = self.answers_to_columns(answers, method)
        region = columns.reshape(-1)
        if self._code is not None:
            return self._code.decode(
                region[: self._code.block_bits], self.payload_bits
            )
        return region

    def decode(self, sketch: FrequencySketch, method: str = "l1") -> np.ndarray:
        """Query the sketch for every attack itemset, then reconstruct."""
        answers = np.zeros((self.n_special, len(self.tuples)))
        for ti, sj, itemset in self.iter_queries():
            answers[sj, ti] = sketch.estimate(itemset)
        return self.decode_from_answers(answers, method)

    def exact_answers(self, db: BinaryDatabase) -> np.ndarray:
        """Ground-truth answers matrix for a database built by :meth:`encode`."""
        answers = np.zeros((self.n_special, len(self.tuples)))
        for ti, sj, itemset in self.iter_queries():
            answers[sj, ti] = db.frequency(itemset)
        return answers
