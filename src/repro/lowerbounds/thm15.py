"""Theorem 15: the tight Omega(k d log(d/k) / eps) indicator bound.

Two stages, mirroring Section 3.2.2:

**Constant eps (:class:`Theorem15Encoding`).**  Take Fact 18's shattered
strings ``x_1..x_v`` (``v ~ (k-1) log(d/(k-1))``) and an arbitrary payload
matrix ``y in {0,1}^{v x d}``; the database row ``i`` is ``(x_i, y_i)``
over ``2d`` attributes.  For a pattern ``s`` and a payload column ``j``,
the k-itemset ``T_s ∪ {d+j}`` has frequency exactly ``<s, t_j>/v`` where
``t_j`` is the j-th payload column -- so indicator answers feed Lemma 19,
which reconstructs every column to within ``2 eps v`` errors.  Wrapping
the payload in the concatenated code (decodable from an adversarial 1/16
fraction of errors, comfortably above the per-column ``2 eps = 4%``)
yields *exact* recovery of ``Omega(k d log(d/k))`` arbitrary bits.

**Sub-constant eps (:class:`AmplifiedTheorem15Encoding`).**  Stack
``m = 1/(50 eps)`` independent copies, appending to block ``i`` the
indicator of a distinct ``(k-1)/2``-itemset tag ``T_i`` on a third group
of ``d`` attributes.  A k-itemset query on the big database that includes
the (shifted) tag ``T_i`` touches only block ``i``'s rows, and its
frequency is exactly ``f(D_i)/m`` -- so a single sketch with threshold
``eps = 1/(50 m)`` answers constant-threshold queries on *every* block,
multiplying the payload (and hence the bound) by ``1/eps``.
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..coding.concatenated import ConcatenatedCode
from ..core.base import FrequencySketch
from ..db.database import BinaryDatabase
from ..db.itemset import Itemset, unrank_itemset
from ..errors import ParameterError
from ..params import SketchParams
from .encoding import DatabaseEncoding
from .fact18 import ShatteredSet
from .lemma19 import Lemma19Decoder

__all__ = ["Theorem15Encoding", "AmplifiedTheorem15Encoding"]

#: The constant threshold used by the bootstrap (the paper's 1/50).
BOOTSTRAP_EPS = 1.0 / 50.0


class Theorem15Encoding(DatabaseEncoding):
    """The ``eps = 1/50`` stage: ``Omega(k d log(d/k))`` payload bits.

    Parameters
    ----------
    d:
        Width of each half of the database (total attributes ``2d``).
    k:
        Query size; ``k >= 2`` (the shattered strings use ``k' = k - 1``).
    eps:
        Indicator threshold (default 1/50, the paper's constant).
    use_ecc:
        If True (default) and the payload region fits a supported
        concatenated-code block, payloads are ECC-wrapped and recovery is
        exact; otherwise raw payload bits are stored and recovery is
        guaranteed only up to a ``2 eps`` fraction of errors per column.
    """

    def __init__(
        self, d: int, k: int, eps: float = BOOTSTRAP_EPS, use_ecc: bool = True
    ) -> None:
        if k < 2:
            raise ParameterError(f"Theorem 15's bootstrap needs k >= 2, got {k}")
        if not 0.0 < eps < 0.5:
            raise ParameterError(f"eps must lie in (0, 0.5), got {eps}")
        self.d = d
        self.k = k
        self.eps = eps
        self.shattered = ShatteredSet(d, k - 1)
        self.v = self.shattered.v
        self._decoder = Lemma19Decoder(self.v, eps)
        region = d * self.v  # bits available in the payload half
        self._code: ConcatenatedCode | None = None
        if use_ecc:
            best = None
            for m in (5, 6, 7, 8, 9, 10):
                code = ConcatenatedCode(m)
                if code.block_bits <= region:
                    best = code
            self._code = best
        self._region_bits = region

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def uses_ecc(self) -> bool:
        """Whether payloads are ECC-wrapped (exact recovery)."""
        return self._code is not None

    @property
    def code(self) -> ConcatenatedCode | None:
        """The wrapping concatenated code (None in raw mode)."""
        return self._code

    @property
    def payload_bits(self) -> int:
        """ECC message bits, or the raw ``d * v`` region when no code fits."""
        if self._code is not None:
            return self._code.message_bits
        return self._region_bits

    @property
    def guaranteed_error_fraction(self) -> float:
        """Worst-case payload error fraction: 0 with ECC, ``2 eps`` raw."""
        if self._code is not None:
            return 0.0
        return min(1.0, 2.0 * self.eps)

    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """``(n=v, d=2d, k, eps, delta)`` -- the sketch under attack."""
        return SketchParams(
            n=self.v, d=2 * self.d, k=self.k, epsilon=self.eps, delta=delta
        )

    # ------------------------------------------------------------------
    # Encode.
    # ------------------------------------------------------------------
    def _coded_region(self, payload: np.ndarray) -> np.ndarray:
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        if bits.size != self.payload_bits:
            raise ParameterError(
                f"payload must have {self.payload_bits} bits, got {bits.size}"
            )
        region = np.zeros(self._region_bits, dtype=bool)
        if self._code is not None:
            region[: self._code.block_bits] = self._code.encode(bits)
        else:
            region[:] = bits
        return region

    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Rows ``(x_i, y_i)``: shattered half plus payload half.

        The coded region is laid out *column-major* (column ``j`` of the
        payload half holds coded bits ``[j v, (j+1) v)``), so Lemma 19's
        per-column error guarantee translates into a bounded error
        fraction on every contiguous chunk of the codeword.
        """
        region = self._coded_region(payload)
        y = region.reshape(self.d, self.v).T  # column j <- chunk j
        rows = np.hstack([np.array(self.shattered.matrix, dtype=bool), y])
        return BinaryDatabase(rows)

    # ------------------------------------------------------------------
    # Decode.
    # ------------------------------------------------------------------
    def column_query(self, pattern: np.ndarray, column: int) -> Itemset:
        """The k-itemset ``T_s ∪ {d + j}`` probing payload column ``j``."""
        if not 0 <= column < self.d:
            raise ParameterError(f"column must lie in [0, {self.d}), got {column}")
        t_s = self.shattered.itemset_for_pattern(pattern)
        return t_s.union([self.d + column])

    def recover_columns(self, sketch: FrequencySketch) -> np.ndarray:
        """Lemma 19 reconstruction of every payload column from the sketch."""
        columns = np.zeros((self.v, self.d), dtype=bool)
        for j in range(self.d):
            columns[:, j] = self._decoder.decode_with_oracle(
                lambda s, _j=j: sketch.indicate(self.column_query(s, _j))
            )
        return columns

    def decode(self, sketch: FrequencySketch) -> np.ndarray:
        """Recover the payload: Lemma 19 per column, then ECC decode."""
        columns = self.recover_columns(sketch)
        region = columns.T.reshape(-1)
        if self._code is not None:
            return self._code.decode(
                region[: self._code.block_bits], self.payload_bits
            )
        return region


class AmplifiedTheorem15Encoding(DatabaseEncoding):
    """The sub-constant-eps stage: payload multiplied by ``m = 1/(50 eps)``.

    Parameters
    ----------
    d:
        Half-width of each inner database (inner databases have ``2d``
        attributes; the tag block adds ``d`` more).
    k:
        Odd query size ``>= 3``; inner queries use ``(k+1)/2``-itemsets and
        tags use ``(k-1)/2``-itemsets.
    m_blocks:
        Number of stacked inner databases; the attacked sketch must use
        ``epsilon = 1/(50 m_blocks)``.
    """

    def __init__(self, d: int, k: int, m_blocks: int, use_ecc: bool = True) -> None:
        if k < 3 or k % 2 == 0:
            raise ParameterError(f"amplification needs odd k >= 3, got {k}")
        if m_blocks < 1:
            raise ParameterError(f"m_blocks must be >= 1, got {m_blocks}")
        self.tag_size = (k - 1) // 2
        capacity = comb(d, self.tag_size)
        if m_blocks > capacity:
            raise ParameterError(
                f"m_blocks={m_blocks} exceeds C(d, (k-1)/2)={capacity} distinct tags"
            )
        self.d = d
        self.k = k
        self.m_blocks = m_blocks
        self.inner = Theorem15Encoding(d, (k + 1) // 2, use_ecc=use_ecc)
        self.tags = [unrank_itemset(i, self.tag_size) for i in range(m_blocks)]
        self.epsilon = self.inner.eps / m_blocks

    @property
    def payload_bits(self) -> int:
        """``m_blocks`` independent inner payloads."""
        return self.m_blocks * self.inner.payload_bits

    def sketch_params(self, delta: float = 0.1) -> SketchParams:
        """``(n = m v, d = 3d, k, eps = 1/(50 m), delta)``."""
        return SketchParams(
            n=self.m_blocks * self.inner.v,
            d=3 * self.d,
            k=self.k,
            epsilon=self.epsilon,
            delta=delta,
        )

    def encode(self, payload: np.ndarray) -> BinaryDatabase:
        """Stack ``[inner block | tag indicator]`` for each of the m payloads."""
        bits = np.asarray(payload, dtype=bool).reshape(-1)
        if bits.size != self.payload_bits:
            raise ParameterError(
                f"payload must have {self.payload_bits} bits, got {bits.size}"
            )
        per = self.inner.payload_bits
        blocks = []
        for i in range(self.m_blocks):
            inner_db = self.inner.encode(bits[i * per : (i + 1) * per])
            tag_cols = np.tile(self.tags[i].indicator(self.d), (inner_db.n, 1))
            blocks.append(np.hstack([inner_db.rows, tag_cols]))
        return BinaryDatabase(np.vstack(blocks))

    def _block_view(self, sketch: FrequencySketch, block: int) -> FrequencySketch:
        """A sketch adapter answering inner queries for one block.

        Inner queries live on ``2d`` attributes; the view appends the
        block's shifted tag, turning them into k-itemsets on the big
        database whose frequencies are the inner ones divided by ``m``.
        """
        outer = self
        tag_shifted = self.tags[block].shift(2 * self.d)

        class _View(FrequencySketch):
            def __init__(self) -> None:
                super().__init__(outer.inner.sketch_params())

            def estimate(self, itemset: Itemset) -> float:
                return sketch.estimate(itemset.union(tag_shifted)) * outer.m_blocks

            def indicate(self, itemset: Itemset) -> bool:
                return sketch.indicate(itemset.union(tag_shifted))

            def size_in_bits(self) -> int:
                return sketch.size_in_bits()

        return _View()

    def decode(self, sketch: FrequencySketch) -> np.ndarray:
        """Run the inner attack on every block through its tag view."""
        out = np.zeros(self.payload_bits, dtype=bool)
        per = self.inner.payload_bits
        for i in range(self.m_blocks):
            view = self._block_view(sketch, i)
            out[i * per : (i + 1) * per] = self.inner.decode(view)
        return out
