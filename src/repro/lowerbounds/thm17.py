"""Theorem 17: median boosting turns For-Each sketches into For-All ones.

The proof of Theorem 17 upgrades any For-Each estimator sketch ``S`` into a
For-All one by storing ``t = O(log(C(d,k)/delta))`` independent copies and
answering with the median of the copies' estimates.  Chernoff pushes the
per-itemset failure probability below ``delta / C(d,k)``; a union bound
finishes.  Consequently a For-Each lower bound follows from the For-All
bound of Theorem 16 at the cost of the ``log C(d,k)`` factor.

:class:`MedianBoostSketcher` implements the transformation generically over
any base :class:`~repro.core.base.Sketcher`; its measured size is exactly
``t`` times the base size, which the E-T17 benchmark compares against the
bound's accounting.
"""

from __future__ import annotations

import math
import statistics

import numpy as np

from ..core.base import FrequencySketch, Sketcher
from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import ParameterError
from ..params import SketchParams

__all__ = ["MedianBoostSketch", "MedianBoostSketcher", "copies_needed"]


def copies_needed(params: SketchParams) -> int:
    """The proof's copy count: ``ceil(10 * ln(C(d,k) / delta))``."""
    return max(1, math.ceil(10.0 * math.log(params.num_itemsets / params.delta)))


class MedianBoostSketch(FrequencySketch):
    """``t`` independent base sketches answered by their median."""

    def __init__(self, params: SketchParams, copies: list[FrequencySketch]) -> None:
        if not copies:
            raise ParameterError("MedianBoostSketch needs at least one copy")
        super().__init__(params)
        self._copies = copies

    @property
    def n_copies(self) -> int:
        """Number of stored base sketches."""
        return len(self._copies)

    def estimate(self, itemset: Itemset) -> float:
        """Median of the copies' estimates."""
        return statistics.median(c.estimate(itemset) for c in self._copies)

    def indicate(self, itemset: Itemset) -> bool:
        """Majority of the copies' indicator answers."""
        votes = sum(c.indicate(itemset) for c in self._copies)
        return 2 * votes > len(self._copies)

    def size_in_bits(self) -> int:
        """Sum of the copies' sizes (the transformation's whole cost)."""
        return sum(c.size_in_bits() for c in self._copies)


class MedianBoostSketcher(Sketcher):
    """Theorem 17's For-Each -> For-All transformation.

    Parameters
    ----------
    base:
        The For-Each sketcher to boost (its task is preserved per copy;
        the boosted sketcher reports the For-All analog).
    copies:
        Optional override of the copy count; ``None`` uses the proof's
        ``ceil(10 ln(C(d,k)/delta))``.
    """

    name = "median-boost"

    def __init__(self, base: Sketcher, copies: int | None = None) -> None:
        super().__init__(base.task.for_all_analog)
        if copies is not None and copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        self.base = base
        self._copies = copies

    def copies_for(self, params: SketchParams) -> int:
        """The number of copies this sketcher will draw."""
        return self._copies if self._copies is not None else copies_needed(params)

    def sketch(
        self,
        db: BinaryDatabase,
        params: SketchParams,
        rng: np.random.Generator | int | None = None,
    ) -> MedianBoostSketch:
        """Draw ``t`` independent base sketches (fresh randomness each)."""
        gen = self._rng(rng)
        t = self.copies_for(params)
        return MedianBoostSketch(
            params, [self.base.sketch(db, params, gen) for _ in range(t)]
        )

    def theoretical_size_bits(self, params: SketchParams) -> int:
        """``t`` times the base sketch size."""
        return self.copies_for(params) * self.base.theoretical_size_bits(params)
