"""Bounded-memory micro-batch ingestion: the driver/executor pipeline.

The paper's sketches only matter operationally if the system can *build*
them from an unbounded stream in bounded memory at hardware speed.  This
module supplies that layer, in the MapReduce count-sketch shape: the
driver partitions the incoming item stream into micro-batches behind a
bounded queue (a full queue blocks the producer -- backpressure, not
buffering), each micro-batch is partitioned across shard workers that
each build **one summary partial** over their slice through the existing
vectorized ``update_many`` fast paths, and the partials are folded into
the resident summary via the mergeable-summary rules of
:mod:`repro.streaming.merge`.  The resident object is therefore always a
*complete*, queryable summary of some prefix of the stream -- never a
half-merged intermediate.

Executor reuse
--------------
Partition sketching runs on the PR-4 :class:`~repro.db.backends.
ShardBackend` layer: the batch array is published once (named shared
memory on the process backend -- **no per-item pickling**), every worker
runs the module-level :func:`_partial_sketch_kernel` over its contiguous
slice, and each partial travels back as a serialized wire frame in a
preallocated output buffer.  The driver decodes and folds the frames
with :func:`~repro.streaming.merge.merge_summaries`, so the shard
results cross process boundaries exactly as distributed-ingest shards
do over the network -- one codec path end to end.

Guarantees
----------
* ``workers == 1`` bypasses the partial path entirely and feeds the
  resident summary's own ``update_many``, so single-worker pipeline
  state is **bit-identical** to one-shot bulk ingestion.
* Multi-worker folds inherit each summary's merge certificates:
  Misra-Gries undercounts by at most ``m/(k+1)`` over the combined
  stream, SpaceSaving overcounts by at most ``m/k``, and a
  non-conservative Count-Min table is *exactly* the one-shot table
  (partial bincounts add), so CMS pipelines are bit-identical at every
  worker count.
* Peak resident memory is bounded by ``queue_depth + 2`` micro-batches
  plus one summary per worker, independent of stream length.
* Supervision: if a process-backend shard worker dies mid-batch (the
  pool surfaces ``BrokenProcessPool``), the pipeline rebuilds the pool
  and retries that batch once -- with the same salt, so the retried
  partials are bit-identical -- before surfacing the failure.  The
  resident summary is untouched by the failed attempt (partials fold
  only after the whole batch succeeds), so no batch is half-applied.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import IO, Iterable, Iterator

import numpy as np

from ..db.backends import ShardBackend, ShardJob, resolve_backend, shard_edges
from ..db.generators import as_rng
from ..db.packed import resolve_workers
from ..errors import StreamError
from .base import StreamSummary
from .count_min import CountMinSketch
from .merge import merge_summaries
from .misra_gries import MisraGries
from .reservoir import ReservoirSample
from .space_saving import SpaceSaving

__all__ = [
    "DEFAULT_BATCH_ITEMS",
    "DEFAULT_QUEUE_DEPTH",
    "PipelineStats",
    "StreamPipeline",
    "SUMMARY_KINDS",
    "SummarySpec",
    "batches_from_binary",
    "batches_from_text",
]

#: Default micro-batch size (items); the memory/backpressure granule.
DEFAULT_BATCH_ITEMS = 1 << 16

#: Default bound on queued micro-batches awaiting sketching.
DEFAULT_QUEUE_DEPTH = 8

#: Summary kinds a pipeline can build.  All four merge (see
#: :mod:`repro.streaming.merge`), so partials always fold.
SUMMARY_KINDS = ("count-min", "misra-gries", "space-saving", "reservoir")

_SENTINEL = object()


@dataclass(frozen=True)
class SummarySpec:
    """A picklable recipe for building one stream summary.

    The pipeline ships this dict-of-scalars across the process boundary
    so every shard worker constructs its partial from the same recipe:
    Count-Min partials draw identical hash coefficients from ``seed``
    (required by :func:`~repro.streaming.merge.merge_count_min`), while
    sampling summaries derive per-(batch, shard) seeds so partials are
    independent.

    Parameters
    ----------
    kind:
        One of :data:`SUMMARY_KINDS`.
    universe:
        Item-id universe size (ids ``0..universe-1``).
    k:
        Counter slots for ``misra-gries`` / ``space-saving``.
    width, depth:
        Table shape for ``count-min``.
    size:
        Reservoir capacity for ``reservoir``.
    seed:
        Hash/sampling seed (see above).
    """

    kind: str
    universe: int
    k: int = 64
    width: int = 1024
    depth: int = 4
    size: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SUMMARY_KINDS:
            raise StreamError(
                f"unknown summary kind {self.kind!r}; expected one of {SUMMARY_KINDS}"
            )
        if self.universe < 1:
            raise StreamError(f"universe must be >= 1, got {self.universe}")

    def to_params(self) -> dict:
        """The spec as a plain dict of scalars (picklable kernel params)."""
        return {
            "kind": self.kind,
            "universe": self.universe,
            "k": self.k,
            "width": self.width,
            "depth": self.depth,
            "size": self.size,
            "seed": self.seed,
        }

    @staticmethod
    def from_params(params: dict) -> "SummarySpec":
        """Rebuild a spec from :meth:`to_params` output."""
        return SummarySpec(**params)

    def build(self, shard_seed: int | None = None) -> StreamSummary:
        """Construct an empty summary from the recipe.

        ``shard_seed`` replaces ``seed`` for the *sampling* randomness of
        a worker-side partial (reservoirs); hash-seeded summaries ignore
        it so every partial shares the resident hash functions.
        """
        if self.kind == "count-min":
            return CountMinSketch(self.universe, self.width, self.depth, rng=self.seed)
        if self.kind == "misra-gries":
            return MisraGries(self.universe, self.k)
        if self.kind == "space-saving":
            return SpaceSaving(self.universe, self.k)
        seed = self.seed if shard_seed is None else shard_seed
        return ReservoirSample(self.universe, self.size, rng=seed)


def _shard_seed(seed: int, salt: int, shard: int) -> int:
    """A stable per-(batch, shard) sampling seed, identical cross-process."""
    state = np.random.SeedSequence(entropy=(seed, salt, shard)).generate_state(1)
    return int(state[0])


def _frame_capacity(spec: SummarySpec) -> int:
    """Bytes reserved per partial frame in the shard output buffer.

    Every pipeline summary kind has fill-independent payload accounting
    (slot-capacity encoding: ``payload n_bits == size_in_bits()`` whether
    empty or full), so an empty summary's frame bounds a full one's up to
    header varint growth -- covered by the fixed slack.
    """
    from ..wire import payload_size_bits

    return 512 + (payload_size_bits(spec.build()) + 7) // 8


def _partial_sketch_kernel(arrays, outs, lo, hi, params) -> None:
    """Shard kernel: build one summary partial and emit it as a wire frame.

    Runs on any :class:`~repro.db.backends.ShardBackend`: ``arrays`` holds
    the published micro-batch, ``outs`` one frame row + length slot per
    shard.  Module-level so the process backend ships it by qualified
    name; only the spec dict and shard edges cross the boundary.
    """
    spec = SummarySpec.from_params(params["spec"])
    edges = params["edges"]
    shard = int(np.searchsorted(np.asarray(edges), lo))
    summary = spec.build(shard_seed=_shard_seed(spec.seed, params["salt"], shard))
    items = arrays["items"][lo:hi]
    if items.size:
        summary.update_many(items)
    frame = summary.to_bytes()
    frames, lens = outs["frames"], outs["lens"]
    if len(frame) > frames.shape[1]:
        raise StreamError(
            f"partial frame of {len(frame)} bytes exceeds the reserved "
            f"{frames.shape[1]}-byte slot"
        )
    frames[shard, : len(frame)] = np.frombuffer(frame, dtype=np.uint8)
    lens[shard] = len(frame)


@dataclass
class PipelineStats:
    """Observability counters for one pipeline run.

    ``feed_wait_s`` is total producer time blocked on a full queue (the
    backpressure signal); ``sketch_s`` is consumer time spent sketching
    and folding; ``max_queue_depth`` the high-water mark of batches
    resident in the queue; ``worker_restarts`` counts process-backend
    pool rebuilds after a shard worker died mid-batch (each one is a
    batch retried once, not lost).
    """

    items: int = 0
    batches: int = 0
    folds: int = 0
    max_queue_depth: int = 0
    feed_wait_s: float = 0.0
    sketch_s: float = 0.0
    worker_restarts: int = 0

    def snapshot(self) -> "PipelineStats":
        return replace(self)


class StreamPipeline:
    """Driver/executor micro-batch ingestion into one resident summary.

    Parameters
    ----------
    spec:
        A :class:`SummarySpec` (or its dict form) describing the summary
        to build.
    batch_items:
        Micro-batch size; :meth:`feed` re-chunks larger arrays.
    queue_depth:
        Bound on batches queued ahead of the sketching thread; a full
        queue blocks :meth:`feed` (backpressure).
    workers:
        Shard count per batch (default: the ``REPRO_WORKERS`` /
        auto heuristic of :func:`~repro.db.packed.resolve_workers`,
        clamped to the host's cores).
    backend:
        Shard executor (name, instance, or ``None`` for the
        ``REPRO_EVAL_BACKEND`` / auto resolution) -- the same registry
        the query kernels use.
    rng:
        Randomness for sampling-based merge rules (reservoir folds);
        defaults to the spec's seed.

    Usage::

        pipeline = StreamPipeline(SummarySpec("count-min", universe=1024))
        summary = pipeline.run(batches)          # drive end to end

    or incrementally: :meth:`start`, :meth:`feed` from the producer,
    :meth:`snapshot` for a consistent mid-stream copy, :meth:`finish`
    for the final summary.
    """

    def __init__(
        self,
        spec: SummarySpec | dict,
        *,
        batch_items: int = DEFAULT_BATCH_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        workers: int | None = None,
        backend: str | ShardBackend | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if batch_items < 1:
            raise StreamError(f"batch_items must be >= 1, got {batch_items}")
        if queue_depth < 1:
            raise StreamError(f"queue_depth must be >= 1, got {queue_depth}")
        self.spec = spec if isinstance(spec, SummarySpec) else SummarySpec(**spec)
        self.batch_items = batch_items
        self.queue_depth = queue_depth
        # One worker sketches ~batch_items ids per shard dispatch; reuse
        # the evaluators' resolution (explicit > REPRO_WORKERS > auto,
        # clamped to cores) with the batch volume as the heuristic input.
        self.workers = resolve_workers(workers, batch_items)
        self.backend = resolve_backend(backend, batch_items, self.workers)
        self._rng = as_rng(self.spec.seed if rng is None else rng)
        self._resident = self.spec.build()
        self._capacity = _frame_capacity(self.spec)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._stats = PipelineStats()
        self._salt = 0
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._finished = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "StreamPipeline":
        """Start the sketching thread (idempotent until :meth:`finish`)."""
        if self._finished:
            raise StreamError("pipeline already finished")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._drain, name="repro-stream-pipeline", daemon=True
            )
            self._thread.start()
        return self

    def feed(self, items) -> None:
        """Enqueue items for sketching; blocks while the queue is full.

        Arrays larger than ``batch_items`` are split into micro-batches,
        so feeding one huge array still bounds queue memory.  Raises the
        sketching thread's failure (e.g. an out-of-universe id) on the
        next call after it occurs.
        """
        self._check_alive()
        arr = np.asarray(items)
        if arr.ndim != 1:
            raise StreamError(f"feed expects a 1-D batch, got shape {arr.shape}")
        if arr.dtype.kind not in "iub":
            raise StreamError(f"feed expects integer items, got dtype {arr.dtype}")
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        for lo in range(0, arr.size, self.batch_items):
            self._raise_failure()
            batch = arr[lo : lo + self.batch_items]
            if not batch.size:
                continue
            began = time.perf_counter()
            self._queue.put(batch)
            waited = time.perf_counter() - began
            with self._lock:
                self._stats.feed_wait_s += waited
                self._stats.max_queue_depth = max(
                    self._stats.max_queue_depth, self._queue.qsize()
                )

    def snapshot(self) -> StreamSummary:
        """A deep copy of the resident summary: always a complete fold.

        Consistent at micro-batch granularity -- the copy reflects every
        batch fully absorbed so far and nothing partial.
        """
        with self._lock:
            return copy.deepcopy(self._resident)

    def finish(self) -> StreamSummary:
        """Drain the queue, stop the sketching thread, return the summary.

        Idempotent; re-raises any failure the sketching thread hit.
        """
        if not self._finished:
            self._finished = True
            if self._thread is not None:
                self._queue.put(_SENTINEL)
                self._thread.join()
        self._raise_failure()
        return self._resident

    def run(self, batches: Iterable) -> StreamSummary:
        """Drive a whole (possibly unbounded) batch iterable end to end."""
        self.start()
        for batch in batches:
            self.feed(batch)
        return self.finish()

    @property
    def stats(self) -> PipelineStats:
        """A consistent copy of the run counters."""
        with self._lock:
            return self._stats.snapshot()

    def __enter__(self) -> "StreamPipeline":
        return self.start()

    def __exit__(self, exc_type, *exc_info: object) -> None:
        if exc_type is None:
            self.finish()
        else:  # unblock and stop the thread; keep the caller's exception
            self._finished = True
            if self._thread is not None:
                self._queue.put(_SENTINEL)
                self._thread.join()

    def _check_alive(self) -> None:
        if self._finished:
            raise StreamError("pipeline already finished")
        if self._thread is None:
            raise StreamError("pipeline not started; call start() or run()")
        self._raise_failure()

    def _raise_failure(self) -> None:
        if self._error is not None:
            raise StreamError(
                f"stream pipeline failed: {self._error}"
            ) from self._error

    # -- consumer side --------------------------------------------------
    def _drain(self) -> None:
        """Sketching thread: absorb batches until the sentinel arrives.

        After a failure, keeps consuming (and discarding) so a blocked
        producer always unblocks; the failure surfaces in feed/finish.
        """
        while True:
            batch = self._queue.get()
            if batch is _SENTINEL:
                return
            if self._error is not None:
                continue
            began = time.perf_counter()
            try:
                self._absorb(batch)
            except BaseException as exc:  # surface in the producer thread
                self._error = exc
                continue
            with self._lock:
                self._stats.items += int(batch.size)
                self._stats.batches += 1
                self._stats.sketch_s += time.perf_counter() - began

    def _absorb(self, batch: np.ndarray) -> None:
        shards = min(self.workers, int(batch.size))
        if shards <= 1:
            # Single-worker path: the resident summary's own bulk update,
            # bit-identical to one-shot update_many over the whole stream.
            with self._lock:
                self._resident.update_many(batch)
            return
        merged = self._sketch_partials(batch, shards)
        with self._lock:
            self._resident = merged

    def _sketch_partials(self, batch: np.ndarray, shards: int) -> StreamSummary:
        """Partition one batch, sketch partials on the backend, fold them."""
        from ..wire import load_as

        edges = shard_edges(int(batch.size), shards)
        frames = np.zeros((len(edges), self._capacity), dtype=np.uint8)
        lens = np.zeros(len(edges), dtype=np.int64)
        job = ShardJob(
            kernel=_partial_sketch_kernel,
            arrays={"items": batch},
            outs={"frames": frames, "lens": lens},
            total=int(batch.size),
            params={
                "spec": self.spec.to_params(),
                "edges": [lo for lo, _ in edges],
                "salt": self._salt,
            },
        )
        self._salt += 1
        try:
            self.backend.run(job, shards)
        except BrokenProcessPool:
            # A shard worker died (OOM kill, SIGKILL, hard crash) and
            # poisoned the pool.  ProcessBackend already dropped the dead
            # pool on this exception, so rerunning builds a fresh one;
            # the job reuses the same salt, so the retried partials are
            # bit-identical to what the dead worker would have produced.
            # One retry only: a second death is a real failure, and it
            # propagates to feed()/finish() like any other.
            with self._lock:
                self._stats.worker_restarts += 1
            frames[:] = 0
            lens[:] = 0
            self.backend.run(job, shards)
        merged = self._resident
        for i in range(len(edges)):
            n = int(lens[i])
            if n == 0:
                raise StreamError(f"shard {i} returned no partial frame")
            partial = load_as(StreamSummary, frames[i, :n].tobytes())
            merged = merge_summaries(merged, partial, rng=self._rng)
            with self._lock:
                self._stats.folds += 1
        return merged


# ----------------------------------------------------------------------
# Stream sources: bounded-memory batch iterators over byte/text streams.
# ----------------------------------------------------------------------
def batches_from_text(
    stream: IO[str],
    batch_items: int = DEFAULT_BATCH_ITEMS,
    *,
    max_items: int | None = None,
    read_chars: int = 1 << 20,
) -> Iterator[np.ndarray]:
    """Micro-batches of whitespace-separated integer ids from a text stream.

    Reads ``read_chars`` at a time and never materializes more than one
    window plus one pending batch, so an unbounded stdin stays bounded.
    ``max_items`` truncates the stream after that many items (the tail of
    the source is left unread).

    Raises
    ------
    StreamError
        On a token that is not an integer.
    """
    if batch_items < 1:
        raise StreamError(f"batch_items must be >= 1, got {batch_items}")
    pending: list[np.ndarray] = []
    have = 0
    emitted = 0

    def flush(arrs: list[np.ndarray]) -> np.ndarray:
        return arrs[0] if len(arrs) == 1 else np.concatenate(arrs)

    def parse(text: str) -> np.ndarray:
        try:
            return np.array(text.split(), dtype=np.int64)
        except (ValueError, OverflowError) as exc:
            raise StreamError(f"invalid item token in text stream: {exc}") from None

    tail = ""
    eof = False
    while not eof:
        chunk = stream.read(read_chars)
        if not chunk:
            eof = True
            text, tail = tail, ""
        else:
            merged_text = tail + chunk
            # Hold back a trailing partial token for the next window.
            cut = len(merged_text)
            while cut > 0 and not merged_text[cut - 1].isspace():
                cut -= 1
            text, tail = merged_text[:cut], merged_text[cut:]
            if not text:
                continue  # one token larger than the window; keep reading
        arr = parse(text) if text.strip() else np.empty(0, dtype=np.int64)
        if arr.size:
            pending.append(arr)
            have += arr.size
        while have >= batch_items or (eof and have > 0):
            whole = flush(pending)
            batch, rest = whole[:batch_items], whole[batch_items:]
            pending, have = ([rest], int(rest.size)) if rest.size else ([], 0)
            if max_items is not None and emitted + batch.size > max_items:
                batch = batch[: max_items - emitted]
            if batch.size:
                emitted += int(batch.size)
                yield batch
            if max_items is not None and emitted >= max_items:
                return


def batches_from_binary(
    stream: IO[bytes],
    batch_items: int = DEFAULT_BATCH_ITEMS,
    *,
    max_items: int | None = None,
) -> Iterator[np.ndarray]:
    """Micro-batches of little-endian u64 item ids from a binary stream.

    The wire-speed input format of ``repro stream --format u64``: eight
    bytes per item, no framing, one :func:`numpy.frombuffer` per batch.
    Reads at most one batch's bytes ahead.

    Raises
    ------
    StreamError
        If the stream ends mid-item or an id exceeds ``2**63 - 1``.
    """
    if batch_items < 1:
        raise StreamError(f"batch_items must be >= 1, got {batch_items}")
    emitted = 0
    carry = b""
    while True:
        if max_items is not None and emitted >= max_items:
            return
        want = batch_items * 8 - len(carry)
        data = stream.read(want)
        buf = carry + (data or b"")
        usable = len(buf) - len(buf) % 8
        carry = buf[usable:]
        if usable:
            raw = np.frombuffer(buf[:usable], dtype="<u8")
            if raw.size and int(raw.max()) > np.iinfo(np.int64).max:
                raise StreamError("item id exceeds the signed 64-bit range")
            batch = raw.astype(np.int64)
            if max_items is not None and emitted + batch.size > max_items:
                batch = batch[: max_items - emitted]
            emitted += int(batch.size)
            yield batch
        if not data:
            if carry:
                raise StreamError(
                    f"truncated u64 item stream: {len(carry)} trailing bytes"
                )
            return
