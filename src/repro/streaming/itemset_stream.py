"""Streaming frequent *itemset* mining: lossy counting over subsets.

The natural extension of Manku-Motwani to itemsets (the object of the
survey [CKN08] cited in Section 1.2): each arriving transaction (database
row) charges every one of its subsets of size <= ``max_size``, maintained
under the lossy-counting eviction rule.  The per-itemset deficit guarantee
(``epsilon * m``) carries over verbatim, but the tracked-set blow-up is
combinatorial -- which is the phenomenon the paper's lower bounds say no
summary can fundamentally avoid (the E-STRM bench measures this against
the flat cost of reservoir row sampling).
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..db.packed import PackedRows
from ..errors import StreamError
from .base import COUNT_BITS

__all__ = ["StreamingItemsetMiner"]


class StreamingItemsetMiner:
    """Lossy counting over the subsets of each transaction.

    Parameters
    ----------
    d:
        Number of attributes.
    epsilon:
        Lossy-counting deficit parameter (undercount <= ``epsilon * m``).
    max_size:
        Largest itemset cardinality tracked.
    max_row_items:
        Guard: transactions with more than this many 1s only contribute
        subsets of their first ``max_row_items`` items (documented cap to
        keep ``C(row, k)`` enumeration bounded).
    """

    def __init__(
        self, d: int, epsilon: float, max_size: int, max_row_items: int = 20
    ) -> None:
        if d < 1:
            raise StreamError(f"d must be >= 1, got {d}")
        if not 0.0 < epsilon < 1.0:
            raise StreamError(f"epsilon must lie in (0, 1), got {epsilon}")
        if not 1 <= max_size <= d:
            raise StreamError(f"need 1 <= max_size <= d, got {max_size}")
        self.d = d
        self.epsilon = epsilon
        self.max_size = max_size
        self.max_row_items = max_row_items
        self.bucket_width = math.ceil(1.0 / epsilon)
        self.rows_seen = 0
        self._entries: dict[Itemset, tuple[int, int]] = {}

    @property
    def current_bucket(self) -> int:
        """Bucket id of the most recent transaction."""
        return max(1, math.ceil(self.rows_seen / self.bucket_width))

    def update(self, row: np.ndarray) -> None:
        """Process one transaction (boolean attribute vector)."""
        arr = np.asarray(row, dtype=bool).reshape(-1)
        if arr.size != self.d:
            raise StreamError(f"row must have {self.d} attributes, got {arr.size}")
        self.rows_seen += 1
        items = np.flatnonzero(arr)[: self.max_row_items]
        bucket = self.current_bucket
        self._charge(items.tolist(), bucket)
        if self.rows_seen % self.bucket_width == 0:
            self._evict(bucket)

    def _charge(self, items: list[int], bucket: int) -> None:
        """Charge every tracked-size subset of one transaction."""
        for size in range(1, min(self.max_size, len(items)) + 1):
            for combo in combinations(items, size):
                key = Itemset(combo)
                count, delta = self._entries.get(key, (0, bucket - 1))
                self._entries[key] = (count + 1, delta)

    def _evict(self, bucket: int) -> None:
        """Lossy-counting eviction at a bucket boundary."""
        self._entries = {
            k: (c, dl) for k, (c, dl) in self._entries.items() if c + dl > bucket
        }

    def update_many(self, rows: np.ndarray | PackedRows) -> None:
        """Bulk-ingest many transactions (bit-identical to repeated update).

        ``rows`` is an ``(m, d)`` boolean matrix or a
        :class:`~repro.db.packed.PackedRows` block.  Item indices for all
        rows come from one vectorized :func:`numpy.nonzero` pass, and rows
        are processed in bucket-aligned chunks: every row of a chunk shares
        one bucket id, and eviction runs exactly at bucket boundaries --
        the tracked-entry state after ingestion equals the row-at-a-time
        path's state.
        """
        if isinstance(rows, PackedRows):
            if rows.d != self.d:
                raise StreamError(
                    f"row must have {self.d} attributes, got {rows.d}"
                )
            arr = rows.to_matrix()
        else:
            arr = np.asarray(rows, dtype=bool)
            if arr.ndim != 2 or arr.shape[1] != self.d:
                raise StreamError(
                    f"rows must be (m, {self.d}), got shape {arr.shape}"
                )
        m = arr.shape[0]
        if m == 0:
            return
        row_ids, cols = np.nonzero(arr)
        boundaries = np.searchsorted(row_ids, np.arange(1, m))
        per_row = np.split(cols, boundaries)
        pos = 0
        while pos < m:
            # All rows up to the next bucket boundary share one bucket id.
            room = self.bucket_width - self.rows_seen % self.bucket_width
            take = min(room, m - pos)
            self.rows_seen += take
            bucket = self.current_bucket
            for r in range(pos, pos + take):
                self._charge(per_row[r][: self.max_row_items].tolist(), bucket)
            if self.rows_seen % self.bucket_width == 0:
                self._evict(bucket)
            pos += take

    def extend(self, db: BinaryDatabase) -> None:
        """Stream a whole database through the bulk :meth:`update_many` path.

        The boolean matrix feeds ``update_many`` directly -- the
        :class:`~repro.db.packed.PackedRows` input form is for streams that
        arrive already packed (reservoir-style transport), where unpacking
        once here beats unpacking per row.
        """
        self.update_many(db.rows)

    def estimate_frequency(self, itemset: Itemset) -> float:
        """Estimated frequency (undercounts by at most ``epsilon``)."""
        if self.rows_seen == 0:
            return 0.0
        return self._entries.get(itemset, (0, 0))[0] / self.rows_seen

    def frequent_itemsets(self, threshold: float) -> dict[Itemset, float]:
        """Itemsets with estimated count >= ``(threshold - epsilon) m``."""
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.rows_seen == 0:
            return {}
        cut = (threshold - self.epsilon) * self.rows_seen
        return {
            itemset: count / self.rows_seen
            for itemset, (count, _) in self._entries.items()
            if count >= cut
        }

    def n_entries(self) -> int:
        """Number of itemsets currently tracked."""
        return len(self._entries)

    def size_in_bits(self) -> int:
        """Tracked entries: each costs an itemset id plus two counters.

        An itemset of size ``<= max_size`` is charged
        ``max_size * ceil(log2 d)`` id bits, the dominant term the E-STRM
        bench compares against row sampling's flat ``d`` bits per row.
        """
        id_bits = self.max_size * max(1, math.ceil(math.log2(max(self.d, 2))))
        return max(1, self.n_entries()) * (id_bits + 2 * COUNT_BITS)

    def to_bytes(
        self, *, version: int | None = None, compress: bool = False
    ) -> bytes:
        """Serialize the tracked entries (:mod:`repro.wire` frame)."""
        from ..wire import dump

        return dump(self, version=version, compress=compress)

    @staticmethod
    def from_bytes(buf: bytes) -> "StreamingItemsetMiner":
        """Reconstruct a miner serialized by :meth:`to_bytes`."""
        from ..wire import load_as

        return load_as(StreamingItemsetMiner, buf)
