"""Streaming frequent *itemset* mining: lossy counting over subsets.

The natural extension of Manku-Motwani to itemsets (the object of the
survey [CKN08] cited in Section 1.2): each arriving transaction (database
row) charges every one of its subsets of size <= ``max_size``, maintained
under the lossy-counting eviction rule.  The per-itemset deficit guarantee
(``epsilon * m``) carries over verbatim, but the tracked-set blow-up is
combinatorial -- which is the phenomenon the paper's lower bounds say no
summary can fundamentally avoid (the E-STRM bench measures this against
the flat cost of reservoir row sampling).
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import StreamError
from .base import COUNT_BITS

__all__ = ["StreamingItemsetMiner"]


class StreamingItemsetMiner:
    """Lossy counting over the subsets of each transaction.

    Parameters
    ----------
    d:
        Number of attributes.
    epsilon:
        Lossy-counting deficit parameter (undercount <= ``epsilon * m``).
    max_size:
        Largest itemset cardinality tracked.
    max_row_items:
        Guard: transactions with more than this many 1s only contribute
        subsets of their first ``max_row_items`` items (documented cap to
        keep ``C(row, k)`` enumeration bounded).
    """

    def __init__(
        self, d: int, epsilon: float, max_size: int, max_row_items: int = 20
    ) -> None:
        if d < 1:
            raise StreamError(f"d must be >= 1, got {d}")
        if not 0.0 < epsilon < 1.0:
            raise StreamError(f"epsilon must lie in (0, 1), got {epsilon}")
        if not 1 <= max_size <= d:
            raise StreamError(f"need 1 <= max_size <= d, got {max_size}")
        self.d = d
        self.epsilon = epsilon
        self.max_size = max_size
        self.max_row_items = max_row_items
        self.bucket_width = math.ceil(1.0 / epsilon)
        self.rows_seen = 0
        self._entries: dict[Itemset, tuple[int, int]] = {}

    @property
    def current_bucket(self) -> int:
        """Bucket id of the most recent transaction."""
        return max(1, math.ceil(self.rows_seen / self.bucket_width))

    def update(self, row: np.ndarray) -> None:
        """Process one transaction (boolean attribute vector)."""
        arr = np.asarray(row, dtype=bool).reshape(-1)
        if arr.size != self.d:
            raise StreamError(f"row must have {self.d} attributes, got {arr.size}")
        self.rows_seen += 1
        items = np.flatnonzero(arr)[: self.max_row_items]
        bucket = self.current_bucket
        for size in range(1, min(self.max_size, items.size) + 1):
            for combo in combinations(items.tolist(), size):
                key = Itemset(combo)
                count, delta = self._entries.get(key, (0, bucket - 1))
                self._entries[key] = (count + 1, delta)
        if self.rows_seen % self.bucket_width == 0:
            self._entries = {
                k: (c, dl) for k, (c, dl) in self._entries.items() if c + dl > bucket
            }

    def extend(self, db: BinaryDatabase) -> None:
        """Stream a whole database row by row."""
        for i in range(db.n):
            self.update(db.row(i))

    def estimate_frequency(self, itemset: Itemset) -> float:
        """Estimated frequency (undercounts by at most ``epsilon``)."""
        if self.rows_seen == 0:
            return 0.0
        return self._entries.get(itemset, (0, 0))[0] / self.rows_seen

    def frequent_itemsets(self, threshold: float) -> dict[Itemset, float]:
        """Itemsets with estimated count >= ``(threshold - epsilon) m``."""
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.rows_seen == 0:
            return {}
        cut = (threshold - self.epsilon) * self.rows_seen
        return {
            itemset: count / self.rows_seen
            for itemset, (count, _) in self._entries.items()
            if count >= cut
        }

    def n_entries(self) -> int:
        """Number of itemsets currently tracked."""
        return len(self._entries)

    def size_in_bits(self) -> int:
        """Tracked entries: each costs an itemset id plus two counters.

        An itemset of size ``<= max_size`` is charged
        ``max_size * ceil(log2 d)`` id bits, the dominant term the E-STRM
        bench compares against row sampling's flat ``d`` bits per row.
        """
        id_bits = self.max_size * max(1, math.ceil(math.log2(max(self.d, 2))))
        return max(1, self.n_entries()) * (id_bits + 2 * COUNT_BITS)
