"""Sticky Sampling (Manku-Motwani [MM02]): the randomized counterpart.

Items are sampled into the summary with a rate that halves as the stream
grows; once tracked, an item's occurrences are counted exactly ("sticky").
Guarantees (w.h.p.): undercount at most ``epsilon * m`` and expected size
``(2/epsilon) log(1/(threshold * delta))`` entries, independent of the
stream length -- the property the paper's SUBSAMPLE shares.
"""

from __future__ import annotations

import math

import numpy as np

from ..db.generators import as_rng
from ..errors import StreamError
from .base import COUNT_BITS, StreamSummary, item_id_bits

__all__ = ["StickySampling"]


class StickySampling(StreamSummary):
    """Manku-Motwani sticky sampling.

    Parameters
    ----------
    universe:
        Item-id universe size.
    epsilon:
        Deficit bound (as in lossy counting).
    threshold:
        The support threshold the user will query with.
    delta:
        Failure probability of the guarantee.
    rng:
        Sampling randomness.
    """

    #: Admission and rescaling draw from ``rng``, which the wire codec
    #: does not carry.
    deterministic_updates = False

    def __init__(
        self,
        universe: int,
        epsilon: float,
        threshold: float,
        delta: float = 0.1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(universe)
        if not 0.0 < epsilon < threshold <= 1.0:
            raise StreamError(
                f"need 0 < epsilon < threshold <= 1, got {epsilon}, {threshold}"
            )
        if not 0.0 < delta < 1.0:
            raise StreamError(f"delta must lie in (0, 1), got {delta}")
        self.epsilon = epsilon
        self.threshold = threshold
        self.delta = delta
        self._rng = as_rng(rng)
        # First 2t elements are sampled at rate 1, next 2t at rate 1/2, ...
        self._t = math.ceil((2.0 / epsilon) * math.log(1.0 / (threshold * delta)))
        self._rate = 1
        self._counts: dict[int, int] = {}

    @property
    def sampling_rate(self) -> int:
        """Current inverse sampling probability (1 = keep everything)."""
        return self._rate

    def _resample(self) -> None:
        # When the rate doubles, each tracked item survives a sequence of
        # coin flips (the classic "diminish counts by geometric" step).
        survivors: dict[int, int] = {}
        for item, count in self._counts.items():
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                survivors[item] = count
        self._counts = survivors

    def _update(self, item: int) -> None:
        boundary = 2 * self._t * self._rate
        if self.stream_length > boundary:
            self._rate *= 2
            self._resample()
        if item in self._counts:
            self._counts[item] += 1
        elif self._rng.random() < 1.0 / self._rate:
            self._counts[item] = 1

    def estimate_count(self, item: int) -> float:
        """Tracked count (exact since tracking began)."""
        return float(self._counts.get(item, 0))

    def n_entries(self) -> int:
        """Entries currently held (expected ``2t``, independent of m)."""
        return len(self._counts)

    def size_in_bits(self) -> int:
        """Held entries, each (id, count), under the cost model."""
        return max(1, self.n_entries()) * (item_id_bits(self.universe) + COUNT_BITS)

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Report tracked items with count >= (t - eps) m."""
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.stream_length == 0:
            return {}
        cut = (threshold - self.epsilon) * self.stream_length
        return {
            item: count / self.stream_length
            for item, count in self._counts.items()
            if count >= cut
        }
