"""Traffic schedules for streaming experiments: skewed, bursty, adversarial.

Uniform synthetic streams flatter every sketch.  Real traffic is
Zipf-skewed (a few items dominate), bursty (load and skew change phase
to phase), and sometimes adversarial (churning cohorts of fresh items
that force counter summaries to evict and decrement).  These generators
produce exactly those shapes as *bounded micro-batch iterators* -- each
yielded batch is an ``int64`` array of item ids in ``[0, d)``, so they
plug straight into :meth:`StreamPipeline.run
<repro.streaming.pipeline.StreamPipeline.run>` and never materialize the
stream.

All schedules are deterministic given ``rng`` (a seed or Generator) and
run forever when ``total_items=None`` -- the soak-test mode the stream
smoke uses, terminated by the consumer.

``python -m repro.streaming.traffic`` writes a schedule to stdout as
text or raw little-endian u64, the producer side of the ``repro
stream`` pipe::

    python -m repro.streaming.traffic zipf --d 4096 --items 10000000 \\
        --format u64 | repro stream - --format u64 --universe 4096
"""

from __future__ import annotations

import sys
from typing import Iterator

import numpy as np

from ..db.generators import as_rng, zipf_weights
from ..errors import StreamError

__all__ = [
    "DEFAULT_TRAFFIC_BATCH",
    "adversarial_traffic",
    "bursty_traffic",
    "zipf_traffic",
]

#: Default items per yielded batch.
DEFAULT_TRAFFIC_BATCH = 1 << 14


def _check(d: int, batch_items: int, total_items: int | None) -> None:
    if d < 1:
        raise StreamError(f"d must be >= 1, got {d}")
    if batch_items < 1:
        raise StreamError(f"batch_items must be >= 1, got {batch_items}")
    if total_items is not None and total_items < 0:
        raise StreamError(f"total_items must be >= 0, got {total_items}")


def _budgeted(batch_items: int, total_items: int | None) -> Iterator[int]:
    """Yield per-batch sizes until the item budget (if any) is spent."""
    if total_items is None:
        while True:
            yield batch_items
    else:
        left = total_items
        while left > 0:
            take = min(batch_items, left)
            left -= take
            yield take


def zipf_traffic(
    d: int,
    exponent: float = 1.2,
    *,
    batch_items: int = DEFAULT_TRAFFIC_BATCH,
    total_items: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Stationary Zipf(``exponent``) traffic over ``d`` items.

    The baseline skew schedule: item ``i`` appears with probability
    proportional to ``1/(i+1)**exponent`` in every batch.
    """
    _check(d, batch_items, total_items)
    gen = as_rng(rng)
    weights = zipf_weights(d, exponent)
    for take in _budgeted(batch_items, total_items):
        yield gen.choice(d, size=take, p=weights).astype(np.int64, copy=False)


def bursty_traffic(
    d: int,
    exponent: float = 1.2,
    *,
    batch_items: int = DEFAULT_TRAFFIC_BATCH,
    total_items: int | None = None,
    calm_batches: int = 8,
    burst_batches: int = 2,
    burst_scale: int = 4,
    hot_items: int = 8,
    hot_share: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Zipf background with periodic hot-set bursts.

    Alternates ``calm_batches`` of plain Zipf traffic with
    ``burst_batches`` of burst phases: batches ``burst_scale``x larger
    (the load spike) in which a rotating window of ``hot_items``
    consecutive ids absorbs ``hot_share`` of the probability mass (the
    skew spike).  Exercises backpressure -- burst batches arrive faster
    than the sketching thread drains them -- and non-stationary skew.
    """
    _check(d, batch_items, total_items)
    if calm_batches < 1 or burst_batches < 0:
        raise StreamError(
            f"need calm_batches >= 1 and burst_batches >= 0, "
            f"got {calm_batches}, {burst_batches}"
        )
    if burst_scale < 1:
        raise StreamError(f"burst_scale must be >= 1, got {burst_scale}")
    hot_items = min(hot_items, d)
    if hot_items < 1 or not 0.0 <= hot_share < 1.0:
        raise StreamError(
            f"need hot_items >= 1 and 0 <= hot_share < 1, "
            f"got {hot_items}, {hot_share}"
        )
    gen = as_rng(rng)
    base = zipf_weights(d, exponent)
    period = calm_batches + burst_batches
    left = total_items  # None = unbounded

    phase = 0
    while left is None or left > 0:
        in_burst = phase % period >= calm_batches
        if in_burst:
            window = (phase // period) % max(d - hot_items + 1, 1)
            weights = base * (1.0 - hot_share)
            weights[window : window + hot_items] += hot_share / hot_items
            weights /= weights.sum()
            size = batch_items * burst_scale
        else:
            weights = base
            size = batch_items
        if left is not None:
            size = min(size, left)
            left -= size
        yield gen.choice(d, size=size, p=weights).astype(np.int64, copy=False)
        phase += 1


def adversarial_traffic(
    d: int,
    *,
    batch_items: int = DEFAULT_TRAFFIC_BATCH,
    total_items: int | None = None,
    cohort: int = 64,
    heavy_share: float = 0.25,
    rng: np.random.Generator | int | None = None,
) -> Iterator[np.ndarray]:
    """Counter-summary worst case: churning cohorts + one persistent heavy.

    Each batch interleaves a ``heavy_share`` fraction of occurrences of
    item ``0`` (the persistent heavy hitter a correct summary must keep)
    with a rotating cohort of ``cohort`` *fresh* ids drawn uniformly, a
    disjoint window per batch.  The churn is the classic Misra-Gries /
    SpaceSaving stressor: untracked items hammer a full counter table,
    forcing decrements and evictions every batch, while the heavy item
    tests that the certificates still hold under maximal churn.
    """
    _check(d, batch_items, total_items)
    if d < 2:
        raise StreamError(f"adversarial traffic needs d >= 2, got {d}")
    cohort = min(cohort, d - 1)
    if cohort < 1 or not 0.0 < heavy_share < 1.0:
        raise StreamError(
            f"need cohort >= 1 and 0 < heavy_share < 1, got {cohort}, {heavy_share}"
        )
    gen = as_rng(rng)
    windows = max((d - 1) // cohort, 1)
    phase = 0
    for take in _budgeted(batch_items, total_items):
        lo = 1 + (phase % windows) * cohort
        hi = min(lo + cohort, d)
        batch = gen.integers(lo, hi, size=take, dtype=np.int64)
        heavy = gen.random(take) < heavy_share
        batch[heavy] = 0
        # Within-batch order is adversarial too: heavy occurrences first,
        # churn afterwards, so every batch ends on a decrement storm.
        yield np.concatenate([batch[heavy], batch[~heavy]])
        phase += 1


def _main(argv: list[str] | None = None) -> int:
    """Write a schedule to stdout as text or raw ``<u8`` items."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.streaming.traffic",
        description="generate stream traffic on stdout (pipe into `repro stream`)",
    )
    parser.add_argument("schedule", choices=("zipf", "bursty", "adversarial"))
    parser.add_argument("--d", type=int, default=4096, help="universe size")
    parser.add_argument(
        "--items", type=int, default=None, help="total items (default: unbounded)"
    )
    parser.add_argument("--exponent", type=float, default=1.2, help="Zipf exponent")
    parser.add_argument(
        "--batch-items", type=int, default=DEFAULT_TRAFFIC_BATCH,
        help="items per generated batch",
    )
    parser.add_argument(
        "--format", choices=("text", "u64"), default="text",
        help="text: whitespace-separated ids; u64: raw little-endian 8-byte ids",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    common = dict(
        batch_items=args.batch_items, total_items=args.items, rng=args.seed
    )
    if args.schedule == "zipf":
        batches = zipf_traffic(args.d, args.exponent, **common)
    elif args.schedule == "bursty":
        batches = bursty_traffic(args.d, args.exponent, **common)
    else:
        batches = adversarial_traffic(args.d, **common)

    out = sys.stdout.buffer
    try:
        for batch in batches:
            if args.format == "u64":
                out.write(batch.astype("<u8").tobytes())
            else:
                out.write(" ".join(map(str, batch.tolist())).encode())
                out.write(b"\n")
        out.flush()
    except BrokenPipeError:
        # The consumer closed the pipe (e.g. --max-items reached): normal
        # termination for an unbounded producer.
        try:
            out.close()
        except BrokenPipeError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(_main())
