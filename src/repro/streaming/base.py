"""Common interface for streaming frequency summaries.

Section 1.2 situates the paper against the streaming frequent-items
literature (Manku-Motwani and the heavy-hitters line).  Every summary here
processes a stream of items one at a time, answers count/frequency
estimates, and reports an exact bit-size via the same accounting rules the
sketches use -- so the E-STRM benchmark can put them on one axis against
uniform sampling.

Size accounting convention: a counter or stored item costs
``ceil(log2(universe))`` bits for the id plus 64 bits for the count, the
standard cost model in the streaming literature.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

from ..errors import StreamError

__all__ = ["StreamSummary", "COUNT_BITS", "item_id_bits"]

#: Bits charged per stored counter value.
COUNT_BITS = 64


def item_id_bits(universe: int) -> int:
    """Bits to store one item identifier from a universe of ``universe`` ids."""
    if universe < 1:
        raise StreamError(f"universe must be >= 1, got {universe}")
    return max(1, math.ceil(math.log2(max(universe, 2))))


class StreamSummary(ABC):
    """A one-pass summary of an item stream.

    Parameters
    ----------
    universe:
        Number of distinct possible items (ids are ``0..universe-1``).
    """

    def __init__(self, universe: int) -> None:
        if universe < 1:
            raise StreamError(f"universe must be >= 1, got {universe}")
        self.universe = universe
        self.stream_length = 0

    def update(self, item: int) -> None:
        """Process one stream item."""
        if not 0 <= item < self.universe:
            raise StreamError(
                f"item {item} outside universe [0, {self.universe})"
            )
        self.stream_length += 1
        self._update(item)

    def extend(self, items: Iterable[int]) -> None:
        """Process a batch of items in order."""
        for item in items:
            self.update(item)

    @abstractmethod
    def _update(self, item: int) -> None:
        """Summary-specific processing of one (validated) item."""

    @abstractmethod
    def estimate_count(self, item: int) -> float:
        """Estimated number of occurrences of ``item`` so far."""

    def estimate_frequency(self, item: int) -> float:
        """Estimated relative frequency (count / stream length)."""
        if self.stream_length == 0:
            return 0.0
        return self.estimate_count(item) / self.stream_length

    @abstractmethod
    def size_in_bits(self) -> int:
        """Exact size of the summary's state under the cost model."""

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Items with estimated frequency above ``threshold``.

        Default implementation scans the universe; summaries that track
        explicit candidate sets override this with their candidate scan.
        """
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        return {
            item: freq
            for item in range(self.universe)
            if (freq := self.estimate_frequency(item)) > threshold
        }
