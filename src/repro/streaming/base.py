"""Common interface for streaming frequency summaries.

Section 1.2 situates the paper against the streaming frequent-items
literature (Manku-Motwani and the heavy-hitters line).  Every summary here
processes a stream of items one at a time, answers count/frequency
estimates, and reports an exact bit-size via the same accounting rules the
sketches use -- so the E-STRM benchmark can put them on one axis against
uniform sampling.

Bulk ingestion: :meth:`StreamSummary.update_many` consumes a whole item
array at once.  Subclasses override ``_update_many`` with a vectorized fast
path that is required to leave the summary in *bit-identical* state to the
equivalent sequence of itemwise updates (the property tests enforce this);
the default falls back to the itemwise loop.  ``extend`` routes through
``update_many``, so E-STRM runs never pay one Python call per element.

Size accounting convention: a counter or stored item costs
``ceil(log2(universe))`` bits for the id plus 64 bits for the count, the
standard cost model in the streaming literature.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..errors import StreamError

__all__ = ["StreamSummary", "COUNT_BITS", "EXTEND_CHUNK_ITEMS", "item_id_bits"]

#: Bits charged per stored counter value.
COUNT_BITS = 64

#: Items pulled from a lazy iterable per :meth:`StreamSummary.extend` chunk.
EXTEND_CHUNK_ITEMS = 1 << 16


def item_id_bits(universe: int) -> int:
    """Bits to store one item identifier from a universe of ``universe`` ids."""
    if universe < 1:
        raise StreamError(f"universe must be >= 1, got {universe}")
    return max(1, math.ceil(math.log2(max(universe, 2))))


def drain_counter_batch(
    summary: "StreamSummary", counts: dict[int, int], k: int, items: np.ndarray
) -> None:
    """Shared bulk path for k-counter summaries (Misra-Gries, SpaceSaving).

    Both summaries mutate their tracked-key set only when an *untracked*
    item arrives at a full table (Misra-Gries decrements everything,
    SpaceSaving evicts the minimum); increments of tracked items commute.
    So: flag tracked items against the current key set in one
    :func:`numpy.isin` sweep, fold each maximal tracked run with one
    :func:`numpy.unique` aggregation, and replay only the mutating events
    itemwise -- rebuilding the flags after each one, since evictions
    invalidate them.  Rebuilds are capped; pathological all-miss batches
    degrade to the plain itemwise loop rather than quadratic rescans.

    State after this call is bit-identical to itemwise updates: run folds
    apply exactly the increments the loop would, in a commuting region, and
    every order-sensitive event goes through the summary's own ``_update``.
    """
    total = int(items.size)
    pos = 0
    rebuilds = 0
    while pos < total:
        if not counts or rebuilds >= 64:
            for item in items[pos:].tolist():
                summary._update(item)
            return
        keys = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        tracked = np.isin(items[pos:], keys)
        rebuilds += 1
        misses = np.flatnonzero(~tracked)
        chunk_start = 0  # relative to pos
        for miss in misses.tolist():
            if miss > chunk_start:
                vals, reps = np.unique(
                    items[pos + chunk_start : pos + miss], return_counts=True
                )
                for v, c in zip(vals.tolist(), reps.tolist()):
                    counts[v] += c
            item = int(items[pos + miss])
            mutates = item not in counts and len(counts) >= k
            summary._update(item)
            chunk_start = miss + 1
            if mutates:
                # Keys were evicted; the tracked flags are stale.
                break
        else:
            if chunk_start < tracked.size:
                vals, reps = np.unique(items[pos + chunk_start :], return_counts=True)
                for v, c in zip(vals.tolist(), reps.tolist()):
                    counts[v] += c
            return
        pos += chunk_start


class StreamSummary(ABC):
    """A one-pass summary of an item stream.

    Parameters
    ----------
    universe:
        Number of distinct possible items (ids are ``0..universe-1``).
    """

    #: True when ``_update`` consumes no randomness, so replaying the
    #: same item batch on a bit-identical summary reproduces a
    #: bit-identical result.  Sampling summaries (reservoirs, sticky
    #: sampling) override this to False; the durability layer then
    #: journals their post-batch *state* instead of the item batch,
    #: because the wire codecs do not carry rng state and an item-level
    #: replay could not reproduce the live draw sequence.
    deterministic_updates: bool = True

    def __init__(self, universe: int) -> None:
        if universe < 1:
            raise StreamError(f"universe must be >= 1, got {universe}")
        self.universe = universe
        self.stream_length = 0

    def update(self, item: int) -> None:
        """Process one stream item."""
        if not 0 <= item < self.universe:
            raise StreamError(
                f"item {item} outside universe [0, {self.universe})"
            )
        self.stream_length += 1
        self._update(item)

    def extend(self, items: Iterable[int]) -> None:
        """Process a batch of items in order (bulk path).

        Array-like inputs go straight to :meth:`update_many`; lazy
        iterables are consumed in :data:`EXTEND_CHUNK_ITEMS`-sized chunks,
        so an unbounded generator never materializes in memory.  State is
        bit-identical to one-shot ingestion either way: ``update_many``
        batch boundaries are not observable (the property tests pin this).
        """
        if isinstance(items, (np.ndarray, Sequence)):
            arr = np.asarray(items)
            if arr.size:  # np.asarray([]) defaults to float64; empty is a no-op
                self.update_many(arr)
            return
        it = iter(items)
        while True:
            chunk = np.fromiter(
                itertools.islice(it, EXTEND_CHUNK_ITEMS), dtype=np.int64
            )
            if chunk.size:
                self.update_many(chunk)
            if chunk.size < EXTEND_CHUNK_ITEMS:
                return

    def update_many(self, items: Sequence[int] | np.ndarray) -> None:
        """Process a whole batch of items in order.

        Validates the batch up front (all-or-nothing: a batch containing an
        out-of-universe id is rejected before any item is applied), then
        hands it to the summary's ``_update_many`` fast path.  The resulting
        state is bit-identical to calling :meth:`update` per item.
        """
        arr = np.asarray(items)
        if arr.ndim > 1:
            raise StreamError(f"update_many expects a 1-D batch, got shape {arr.shape}")
        if arr.dtype.kind not in "iub":
            raise StreamError(f"update_many expects integer items, got dtype {arr.dtype}")
        arr = arr.astype(np.int64, copy=False).reshape(-1)
        if arr.size == 0:
            return
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= self.universe:
            bad = lo if lo < 0 else hi
            raise StreamError(f"item {bad} outside universe [0, {self.universe})")
        self._update_many(arr)

    def _update_many(self, items: np.ndarray) -> None:
        """Batch processing of validated items; override for a fast path.

        Implementations own the ``stream_length`` bookkeeping (some
        summaries' transition rules read it mid-batch).
        """
        for item in items.tolist():
            self.stream_length += 1
            self._update(item)

    @abstractmethod
    def _update(self, item: int) -> None:
        """Summary-specific processing of one (validated) item."""

    @abstractmethod
    def estimate_count(self, item: int) -> float:
        """Estimated number of occurrences of ``item`` so far."""

    def estimate_frequency(self, item: int) -> float:
        """Estimated relative frequency (count / stream length)."""
        if self.stream_length == 0:
            return 0.0
        return self.estimate_count(item) / self.stream_length

    @abstractmethod
    def size_in_bits(self) -> int:
        """Exact size of the summary's state under the cost model.

        Equal, for every summary with a registered wire codec, to the bit
        length of the payload :meth:`to_bytes` frames.
        """

    def to_bytes(
        self, *, version: int | None = None, compress: bool = False
    ) -> bytes:
        """Serialize to the framed wire format (:mod:`repro.wire`).

        This is the distributed-ingest transport: summaries built where
        the data lives are dumped, shipped, reconstructed with
        :meth:`from_bytes`, and merged via :mod:`repro.streaming.merge`.
        ``version``/``compress`` select the frame layout; the charged
        bit count is unchanged by compression.
        """
        from ..wire import dump

        return dump(self, version=version, compress=compress)

    @staticmethod
    def from_bytes(buf: bytes) -> "StreamSummary":
        """Reconstruct a summary serialized by :meth:`to_bytes`.

        Raises
        ------
        repro.errors.WireFormatError
            If the frame is malformed, corrupted, or not a streaming
            summary.
        """
        from ..wire import load_as

        return load_as(StreamSummary, buf)

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Items with estimated frequency above ``threshold``.

        Default implementation scans the universe; summaries that track
        explicit candidate sets override this with their candidate scan.
        """
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        return {
            item: freq
            for item in range(self.universe)
            if (freq := self.estimate_frequency(item)) > threshold
        }
