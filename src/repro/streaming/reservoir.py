"""Reservoir sampling: SUBSAMPLE as a one-pass streaming algorithm.

Vitter's Algorithm R maintains a uniform sample of ``size`` elements from a
stream of unknown length, which is exactly how the paper's SUBSAMPLE sketch
is realised in a streaming setting (Section 1.2's framing: none of the
streaming algorithms beat uniform row sampling -- this *is* the uniform
row sampler).

Two variants are provided: :class:`ReservoirSample` over item ids (for
E-STRM's heavy-hitter comparisons) and :class:`RowReservoir` over database
rows, which yields a genuine :class:`~repro.core.subsample.SubsampleSketch`
at the end of the pass.
"""

from __future__ import annotations

import numpy as np

from ..core.subsample import SubsampleSketch
from ..db.database import BinaryDatabase
from ..db.generators import as_rng
from ..db.packed import PackedRows, pack_rows
from ..errors import StreamError
from ..params import SketchParams
from .base import COUNT_BITS, StreamSummary, item_id_bits

__all__ = ["ReservoirSample", "RowReservoir"]


class ReservoirSample(StreamSummary):
    """Uniform sample of ``size`` item occurrences (Algorithm R).

    Parameters
    ----------
    universe:
        Item-id universe size.
    size:
        Reservoir capacity.
    rng:
        Sampling randomness.
    """

    #: Evictions draw from ``rng``, which the wire codec does not carry.
    deterministic_updates = False

    def __init__(
        self,
        universe: int,
        size: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(universe)
        if size < 1:
            raise StreamError(f"size must be >= 1, got {size}")
        self.size = size
        self._rng = as_rng(rng)
        self._reservoir: list[int] = []

    @property
    def sample(self) -> list[int]:
        """The current reservoir contents (uniform over the prefix)."""
        return list(self._reservoir)

    def _update(self, item: int) -> None:
        if len(self._reservoir) < self.size:
            self._reservoir.append(item)
            return
        j = int(self._rng.integers(0, self.stream_length))
        if j < self.size:
            self._reservoir[j] = item

    def estimate_count(self, item: int) -> float:
        """Scale the in-sample count back to the stream length."""
        if not self._reservoir:
            return 0.0
        in_sample = sum(1 for x in self._reservoir if x == item)
        return in_sample * self.stream_length / len(self._reservoir)

    def size_in_bits(self) -> int:
        """Stored ids plus the stream-length counter."""
        return self.size * item_id_bits(self.universe) + COUNT_BITS


class RowReservoir:
    """Uniform reservoir over database *rows*: streaming SUBSAMPLE.

    Feed rows with :meth:`update`; :meth:`to_sketch` packages the reservoir
    as a standard :class:`~repro.core.subsample.SubsampleSketch` whose size
    accounting (``s * d`` bits) matches Lemma 9.

    Reservoir slots hold rows in the :class:`~repro.db.packed.PackedRows`
    word layout (``ceil(d / 64)`` uint64 words per row, an 8x memory
    reduction over boolean storage) -- the in-memory reservoir mirrors the
    ``d`` bits per row the sketch is charged for.  :meth:`extend` reads the
    database's shared packed-row kernel directly, so whole-database
    streaming never re-packs per row, and the eviction RNG sequence is
    identical to the row-at-a-time path.
    """

    def __init__(
        self, d: int, size: int, rng: np.random.Generator | int | None = None
    ) -> None:
        if d < 1:
            raise StreamError(f"d must be >= 1, got {d}")
        if size < 1:
            raise StreamError(f"size must be >= 1, got {size}")
        self.d = d
        self.size = size
        self._rng = as_rng(rng)
        self._words: list[np.ndarray] = []
        self.rows_seen = 0

    def _offer(self, row_words: np.ndarray) -> None:
        """Reservoir step for one packed row (Algorithm R)."""
        self.rows_seen += 1
        if len(self._words) < self.size:
            self._words.append(row_words.copy())
            return
        j = int(self._rng.integers(0, self.rows_seen))
        if j < self.size:
            self._words[j] = row_words.copy()

    def update(self, row: np.ndarray) -> None:
        """Offer one row (boolean attribute vector) to the reservoir."""
        arr = np.asarray(row, dtype=bool).reshape(-1)
        if arr.size != self.d:
            raise StreamError(f"row must have {self.d} attributes, got {arr.size}")
        self._offer(pack_rows(arr[None, :])[0])

    def extend(self, db: BinaryDatabase) -> None:
        """Stream every row of a database through the reservoir.

        Routes through ``db.packed_rows``: rows arrive already packed, and
        the kernel stays cached on the database for other consumers.
        """
        if db.d != self.d:
            raise StreamError(f"row must have {self.d} attributes, got {db.d}")
        words = db.packed_rows.words
        for i in range(db.n):
            self._offer(words[i])

    def size_in_bits(self) -> int:
        """``size * d + 64`` bits: capacity row slots plus the row counter.

        Charged at capacity (like :class:`ReservoirSample`'s id slots), so
        a shard's size does not leak how many rows it has absorbed.
        ``rows_seen`` is summary state, not a public parameter -- the
        merge rule weights shards by it -- so it is charged at
        :data:`~repro.streaming.base.COUNT_BITS` like every stream-length
        counter.
        """
        return self.size * self.d + COUNT_BITS

    def to_bytes(
        self, *, version: int | None = None, compress: bool = False
    ) -> bytes:
        """Serialize the reservoir shard (:mod:`repro.wire` frame).

        The distributed SUBSAMPLE transport: dump a shard where the rows
        live, ship it, :meth:`from_bytes` it, and merge with
        :func:`repro.streaming.merge.merge_row_reservoirs`.
        """
        from ..wire import dump

        return dump(self, version=version, compress=compress)

    @staticmethod
    def from_bytes(buf: bytes) -> "RowReservoir":
        """Reconstruct a reservoir shard serialized by :meth:`to_bytes`."""
        from ..wire import load_as

        return load_as(RowReservoir, buf)

    def to_sketch(self, params: SketchParams) -> SubsampleSketch:
        """Package the reservoir as a SUBSAMPLE sketch.

        The sampled database adopts the reservoir's packed words as its
        row-major kernel directly (no re-pack).

        Raises
        ------
        StreamError
            If the reservoir is empty.
        """
        if not self._words:
            raise StreamError("reservoir is empty; stream rows first")
        words = np.array(self._words, dtype=np.uint64)
        sample = BinaryDatabase.from_packed_rows(PackedRows.from_words(words, self.d))
        return SubsampleSketch(params, sample)
