"""Streaming baselines (Section 1.2's heavy-hitters and itemset literature)."""

from .base import COUNT_BITS, EXTEND_CHUNK_ITEMS, StreamSummary, item_id_bits
from .count_min import CountMinSketch
from .itemset_stream import StreamingItemsetMiner
from .lossy_counting import LossyCounting
from .merge import (
    merge_count_min,
    merge_misra_gries,
    merge_payloads,
    merge_reservoirs,
    merge_row_reservoirs,
    merge_space_saving,
)
from .misra_gries import MisraGries
from .pipeline import (
    PipelineStats,
    StreamPipeline,
    SUMMARY_KINDS,
    SummarySpec,
    batches_from_binary,
    batches_from_text,
)
from .reservoir import ReservoirSample, RowReservoir
from .space_saving import SpaceSaving
from .sticky_sampling import StickySampling
from .traffic import adversarial_traffic, bursty_traffic, zipf_traffic

__all__ = [
    "StreamSummary",
    "COUNT_BITS",
    "EXTEND_CHUNK_ITEMS",
    "item_id_bits",
    "StreamPipeline",
    "SummarySpec",
    "PipelineStats",
    "SUMMARY_KINDS",
    "batches_from_text",
    "batches_from_binary",
    "zipf_traffic",
    "bursty_traffic",
    "adversarial_traffic",
    "MisraGries",
    "SpaceSaving",
    "LossyCounting",
    "StickySampling",
    "CountMinSketch",
    "ReservoirSample",
    "RowReservoir",
    "StreamingItemsetMiner",
    "merge_misra_gries",
    "merge_space_saving",
    "merge_count_min",
    "merge_reservoirs",
    "merge_row_reservoirs",
    "merge_payloads",
]
