"""Lossy Counting (Manku-Motwani [MM02]) -- the paper's Section 1.2 anchor.

The stream is processed in buckets of width ``ceil(1/epsilon)``.  Each
tracked item carries a count and the maximum count it could have had
before tracking started (``delta``); at bucket boundaries, items whose
``count + delta`` falls below the bucket number are evicted.  Guarantees:
estimates undercount by at most ``epsilon * m``, and at most
``(1/epsilon) log(epsilon m)`` entries are ever held.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import StreamError
from .base import COUNT_BITS, StreamSummary, item_id_bits

__all__ = ["LossyCounting"]


class LossyCounting(StreamSummary):
    """Manku-Motwani lossy counting with error parameter ``epsilon``.

    Parameters
    ----------
    universe:
        Item-id universe size.
    epsilon:
        Deficit bound: estimates undercount true counts by at most
        ``epsilon * stream_length``.
    """

    def __init__(self, universe: int, epsilon: float) -> None:
        super().__init__(universe)
        if not 0.0 < epsilon < 1.0:
            raise StreamError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.bucket_width = math.ceil(1.0 / epsilon)
        self._entries: dict[int, tuple[int, int]] = {}  # item -> (count, delta)

    @property
    def current_bucket(self) -> int:
        """The bucket id of the most recent item, ``ceil(m / w)``."""
        return max(1, math.ceil(self.stream_length / self.bucket_width))

    def _update(self, item: int) -> None:
        count, delta = self._entries.get(item, (0, self.current_bucket - 1))
        self._entries[item] = (count + 1, delta)
        if self.stream_length % self.bucket_width == 0:
            bucket = self.current_bucket
            self._entries = {
                key: (c, d) for key, (c, d) in self._entries.items() if c + d > bucket
            }

    def _update_many(self, items: np.ndarray) -> None:
        """Bulk path: aggregate whole buckets, evict at bucket boundaries.

        Within one bucket every update is order-free -- increments commute
        and any first occurrence inserts with the same ``delta`` (the bucket
        number minus one) -- so each bucket-aligned chunk collapses to one
        :func:`numpy.unique` aggregation, with the eviction sweep replayed
        exactly at the boundary.  Bit-identical to itemwise updates.
        """
        width = self.bucket_width
        total = int(items.size)
        pos = 0
        while pos < total:
            room = width - (self.stream_length % width)
            take = min(room, total - pos)
            chunk = items[pos : pos + take]
            self.stream_length += take
            bucket = self.current_bucket
            delta = bucket - 1
            entries = self._entries
            vals, reps = np.unique(chunk, return_counts=True)
            for v, c in zip(vals.tolist(), reps.tolist()):
                count, first_delta = entries.get(v, (0, delta))
                entries[v] = (count + c, first_delta)
            if self.stream_length % width == 0:
                self._entries = {
                    key: (c, d) for key, (c, d) in entries.items() if c + d > bucket
                }
            pos += take

    def estimate_count(self, item: int) -> float:
        """Stored count; undercounts by at most ``epsilon * m``."""
        return float(self._entries.get(item, (0, 0))[0])

    def max_deficit(self) -> float:
        """The guarantee: true count - estimate <= ``epsilon * m``."""
        return self.epsilon * self.stream_length

    def n_entries(self) -> int:
        """Entries currently held (bounded by ``(1/eps) log(eps m)``)."""
        return len(self._entries)

    def size_in_bits(self) -> int:
        """Held entries, each (id, count, delta), under the cost model."""
        return max(1, self.n_entries()) * (
            item_id_bits(self.universe) + 2 * COUNT_BITS
        )

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Manku-Motwani query: report items with count >= (t - eps) m."""
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.stream_length == 0:
            return {}
        cut = (threshold - self.epsilon) * self.stream_length
        return {
            item: count / self.stream_length
            for item, (count, _) in self._entries.items()
            if count >= cut
        }
