"""SpaceSaving (Metwally-Agrawal-El Abbadi): overcounting heavy hitters.

Keeps ``k`` counters; an untracked item evicts the *minimum* counter and
inherits its count plus one.  Estimates never undercount and overcount by
at most ``m / k``; the summary also stores each counter's maximum possible
overestimate so answers come with per-item error certificates.
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamError
from .base import COUNT_BITS, StreamSummary, drain_counter_batch, item_id_bits

__all__ = ["SpaceSaving"]


class SpaceSaving(StreamSummary):
    """The SpaceSaving summary with ``k`` counters.

    Parameters
    ----------
    universe:
        Item-id universe size.
    k:
        Number of counters; guarantees overcount <= ``m / k``.
    """

    def __init__(self, universe: int, k: int) -> None:
        super().__init__(universe)
        if k < 1:
            raise StreamError(f"k must be >= 1, got {k}")
        self.k = k
        self._counts: dict[int, int] = {}
        self._errors: dict[int, int] = {}

    def _update(self, item: int) -> None:
        counts = self._counts
        if item in counts:
            counts[item] += 1
            return
        if len(counts) < self.k:
            counts[item] = 1
            self._errors[item] = 0
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[item] = floor + 1
        self._errors[item] = floor

    def _update_many(self, items: np.ndarray) -> None:
        """Bulk path: fold runs of tracked items, replay eviction events."""
        self.stream_length += int(items.size)
        drain_counter_batch(self, self._counts, self.k, items)

    def estimate_count(self, item: int) -> float:
        """Stored count (never an undercount; overcounts <= m/k)."""
        return float(self._counts.get(item, 0))

    def guaranteed_error(self, item: int) -> float:
        """Certified maximum overcount for a tracked item (0 if untracked)."""
        return float(self._errors.get(item, 0))

    def max_overcount(self) -> float:
        """The guarantee: estimates are high by at most ``m / k``."""
        return self.stream_length / self.k

    def size_in_bits(self) -> int:
        """``k`` slots of (id, count, error) under the cost model."""
        return self.k * (item_id_bits(self.universe) + 2 * COUNT_BITS)

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Scan only the tracked candidates."""
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.stream_length == 0:
            return {}
        return {
            item: count / self.stream_length
            for item, count in self._counts.items()
            if count / self.stream_length > threshold
        }
