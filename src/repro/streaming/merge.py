"""Merging streaming summaries (the distributed / parallel setting).

Itemset sketches are useful precisely because they can be computed where
the data lives and shipped; the streaming literature's summaries support
the same workflow through *merge* operations.  Implemented here:

* :func:`merge_misra_gries` -- the Agarwal et al. mergeable-summaries
  rule: add counters, then subtract the (k+1)-st largest value and drop
  non-positive counters.  The merged deficit bound is the sum of the
  parts' bounds, preserving the ``m/(k+1)`` guarantee over the combined
  stream.
* :func:`merge_space_saving` -- the standard k-counter SpaceSaving merge
  (the parallel SpaceSaving rule): counts of items tracked on both sides
  add; an item tracked on one side only picks up the other side's
  minimum counter as its worst-case hidden count; keep the ``k`` largest.
  Estimates still never undercount and the per-item error certificates
  sum, so the merged overcount bound is ``m_a/k + m_b/k`` -- the summed
  bound over the combined stream.
* :func:`merge_count_min` -- entrywise addition (requires identical hash
  functions), exact for the CM invariant.
* :func:`merge_reservoirs` -- hypergeometric subsampling so the merged
  reservoir is a uniform sample of the concatenated streams.
* :func:`merge_row_reservoirs` -- the same for row reservoirs, yielding a
  distributed SUBSAMPLE: sketch shards independently, merge, and the
  result is distributed exactly as a single-pass uniform row sample.
* :func:`merge_summaries` -- the object-level entry point: dispatch two
  already-decoded summaries to the matching rule by concrete type (what
  the sketch server's registry uses to fold a pushed shard into a
  resident one).
* :func:`merge_payloads` -- the wire-format entry point: shards arrive
  as serialized frames (:mod:`repro.wire`) -- byte strings, open shard
  *files*, or one iterable yielding either -- are reconstructed one at a
  time, and folded left-to-right by whichever rule matches their type.
  This is the full distributed-ingest story: ``S`` runs next to the
  data, ships a bit string, and the coordinator merges bit strings
  alone, never holding more than one undecoded frame.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from ..db.generators import as_rng
from ..errors import StreamError
from .count_min import CountMinSketch
from .misra_gries import MisraGries
from .reservoir import ReservoirSample, RowReservoir
from .space_saving import SpaceSaving

__all__ = [
    "merge_misra_gries",
    "merge_space_saving",
    "merge_count_min",
    "merge_reservoirs",
    "merge_row_reservoirs",
    "merge_summaries",
    "merge_payloads",
]


def merge_misra_gries(a: MisraGries, b: MisraGries) -> MisraGries:
    """Merge two Misra-Gries summaries with the same ``k`` and universe.

    The classic mergeable-summaries construction: sum counters, keep the
    top ``k`` after subtracting the (k+1)-st largest combined count.
    """
    if a.universe != b.universe or a.k != b.k:
        raise StreamError("can only merge summaries with equal universe and k")
    combined: dict[int, int] = dict(a._counters)
    for item, count in b._counters.items():
        combined[item] = combined.get(item, 0) + count
    out = MisraGries(a.universe, a.k)
    out.stream_length = a.stream_length + b.stream_length
    if len(combined) > a.k:
        cutoff = sorted(combined.values(), reverse=True)[a.k]
        combined = {
            item: count - cutoff
            for item, count in combined.items()
            if count - cutoff > 0
        }
    out._counters = combined
    return out


def merge_space_saving(a: SpaceSaving, b: SpaceSaving) -> SpaceSaving:
    """Merge two SpaceSaving summaries with the same ``k`` and universe.

    The standard k-counter merge rule (parallel SpaceSaving): for each
    item tracked on either side, add its two counts; an item tracked only
    on one side contributes the *other* side's minimum counter in place of
    its unknown count there (zero while that side still has spare
    counters, since then every seen item is tracked).  The ``k`` largest
    merged counters are kept, ties broken by item id for determinism.

    The SpaceSaving invariants survive the merge:

    * counts never undercount -- an untracked item's true count is at most
      the substituted minimum;
    * the per-item error certificates add, so every kept counter
      overcounts by at most ``m_a/k + m_b/k``, the merged summary's
      :meth:`~repro.streaming.space_saving.SpaceSaving.max_overcount`;
    * dropped items have counts at most the smallest kept counter, as
      after an ordinary eviction.
    """
    if a.universe != b.universe or a.k != b.k:
        raise StreamError("can only merge summaries with equal universe and k")
    # A side with spare counters tracks everything it has seen, so the
    # hidden count of an item untracked there is exactly zero.
    min_a = min(a._counts.values()) if len(a._counts) >= a.k else 0
    min_b = min(b._counts.values()) if len(b._counts) >= b.k else 0
    combined: dict[int, tuple[int, int]] = {}
    for item in a._counts.keys() | b._counts.keys():
        count_a, count_b = a._counts.get(item), b._counts.get(item)
        if count_a is None:
            count = min_a + count_b
            error = min_a + b._errors[item]
        elif count_b is None:
            count = count_a + min_b
            error = a._errors[item] + min_b
        else:
            count = count_a + count_b
            error = a._errors[item] + b._errors[item]
        combined[item] = (count, error)
    kept = sorted(combined.items(), key=lambda kv: (-kv[1][0], kv[0]))[: a.k]
    out = SpaceSaving(a.universe, a.k)
    out.stream_length = a.stream_length + b.stream_length
    out._counts = {item: count for item, (count, _) in kept}
    out._errors = {item: error for item, (_, error) in kept}
    return out


def merge_count_min(a: CountMinSketch, b: CountMinSketch) -> CountMinSketch:
    """Merge two Count-Min sketches sharing dimensions and hash seeds."""
    if (
        a.universe != b.universe
        or a.width != b.width
        or a.depth != b.depth
        or not np.array_equal(a._a, b._a)
        or not np.array_equal(a._b, b._b)
    ):
        raise StreamError(
            "Count-Min merge requires identical dimensions and hash functions"
        )
    if a.conservative or b.conservative:
        raise StreamError(
            "conservative-update sketches are not mergeable by addition"
        )
    out = CountMinSketch(a.universe, a.width, a.depth)
    out._a = a._a.copy()
    out._b = a._b.copy()
    out._table = a._table + b._table
    out.stream_length = a.stream_length + b.stream_length
    return out


def merge_reservoirs(
    a: ReservoirSample,
    b: ReservoirSample,
    rng: np.random.Generator | int | None = None,
) -> ReservoirSample:
    """Merge two reservoirs into a uniform sample of the combined stream.

    Each output slot draws from ``a``'s reservoir with probability
    ``m_a / (m_a + m_b)`` (without replacement within each side), which
    makes the merged reservoir a uniform ``size``-subset of the
    concatenated streams -- the standard distributed reservoir rule.
    """
    if a.universe != b.universe or a.size != b.size:
        raise StreamError("can only merge reservoirs with equal universe and size")
    gen = as_rng(rng)
    total = a.stream_length + b.stream_length
    out = ReservoirSample(a.universe, a.size, rng=gen)
    out.stream_length = total
    if total == 0:
        return out
    pool_a = list(a.sample)
    pool_b = list(b.sample)
    gen.shuffle(pool_a)
    gen.shuffle(pool_b)
    merged: list[int] = []
    target = min(a.size, len(pool_a) + len(pool_b))
    for _ in range(target):
        take_a = gen.random() < a.stream_length / total if pool_b else True
        if take_a and not pool_a:
            take_a = False
        merged.append(pool_a.pop() if take_a else pool_b.pop())
    out._reservoir = merged
    return out


def merge_row_reservoirs(
    a: RowReservoir,
    b: RowReservoir,
    rng: np.random.Generator | int | None = None,
) -> RowReservoir:
    """Merge two row reservoirs: distributed SUBSAMPLE sketching."""
    if a.d != b.d or a.size != b.size:
        raise StreamError("can only merge row reservoirs with equal d and size")
    gen = as_rng(rng)
    total = a.rows_seen + b.rows_seen
    out = RowReservoir(a.d, a.size, rng=gen)
    out.rows_seen = total
    # Reservoir slots hold packed row words; merging moves words, not bools.
    pool_a = [row.copy() for row in a._words]
    pool_b = [row.copy() for row in b._words]
    gen.shuffle(pool_a)
    gen.shuffle(pool_b)
    merged: list[np.ndarray] = []
    target = min(a.size, len(pool_a) + len(pool_b))
    for _ in range(target):
        take_a = gen.random() < a.rows_seen / max(total, 1) if pool_b else True
        if take_a and not pool_a:
            take_a = False
        merged.append(pool_a.pop() if take_a else pool_b.pop())
    out._words = merged
    return out


def merge_summaries(
    left: Any,
    right: Any,
    rng: np.random.Generator | int | None = None,
):
    """Merge two *decoded* summaries of the same concrete type.

    The object-level entry point behind :func:`merge_payloads`: dispatch
    to the matching merge rule by concrete type.  This is what callers
    holding live summaries -- the sketch server's registry folding a
    pushed shard into a resident one -- use directly, skipping the frame
    decode that :func:`merge_payloads` performs.  ``rng`` feeds the
    sampling-based rules (reservoirs) and is ignored by the
    deterministic ones.

    Raises
    ------
    StreamError
        If the two summaries' concrete types differ or their type has no
        merge rule (the naive :class:`~repro.core.base.FrequencySketch`
        types are not mergeable -- a sketch of ``A`` and a sketch of
        ``B`` carry no rule for reconstructing a sketch of ``A ∪ B``).
    """
    return _merge_pair(left, right, as_rng(rng))


def _merge_pair(left: Any, right: Any, rng: np.random.Generator):
    """Fold one decoded shard into the running merge by concrete type."""
    if type(left) is not type(right):
        raise StreamError(
            f"cannot merge {type(left).__name__} with {type(right).__name__}"
        )
    if isinstance(left, MisraGries):
        return merge_misra_gries(left, right)
    if isinstance(left, SpaceSaving):
        return merge_space_saving(left, right)
    if isinstance(left, CountMinSketch):
        return merge_count_min(left, right)
    if isinstance(left, ReservoirSample):
        return merge_reservoirs(left, right, rng=rng)
    if isinstance(left, RowReservoir):
        return merge_row_reservoirs(left, right, rng=rng)
    raise StreamError(f"no merge rule for {type(left).__name__} shards")


def _iter_shard(shard: Any) -> Iterator[Any]:
    """Decode one shard into summaries, one at a time.

    A shard is a frame byte string or a readable binary stream.  Either
    may hold a wire-v3 *container*, in which case every contained frame
    is yielded in container order -- decoded sequentially through
    :func:`repro.wire.iter_container_objects`, so even a fleet container
    contributes at most one undecoded frame at a time.
    """
    import io

    from ..wire import (
        WIRE_V3,
        iter_container_objects,
        load,
        load_from,
        peek_wire_version,
    )

    if isinstance(shard, (bytes, bytearray, memoryview)):
        data = bytes(shard)
        if peek_wire_version(data) == WIRE_V3:
            yield from iter_container_objects(io.BytesIO(data))
        else:
            yield load(data)
        return
    if hasattr(shard, "read"):
        head = shard.read(5)
        if peek_wire_version(head) == WIRE_V3:
            yield from iter_container_objects(_Resumed(head, shard))
        else:
            yield load_from(_Resumed(head, shard))
        return
    raise StreamError(
        f"shard must be frame bytes or a binary stream, got {type(shard).__name__}"
    )


class _Resumed:
    """A binary reader that replays peeked prefix bytes, then delegates.

    Lets :func:`_iter_shard` sniff a stream's wire version without
    requiring ``seek`` -- shard streams may be sockets or pipes.
    """

    def __init__(self, prefix: bytes, stream: Any) -> None:
        self._prefix = prefix
        self._stream = stream

    def read(self, size: int = -1) -> bytes:
        if not self._prefix:
            return self._stream.read(size)
        if size is None or size < 0:
            taken, self._prefix = self._prefix, b""
            return taken + self._stream.read(size)
        taken, self._prefix = self._prefix[:size], self._prefix[size:]
        if len(taken) < size:
            taken += self._stream.read(size - len(taken))
        return taken


def merge_payloads(
    *shards: Any,
    rng: np.random.Generator | int | None = None,
):
    """Merge serialized summary shards by their wire frames.

    Each shard is a frame byte string or a readable binary file object
    (an open shard file); alternatively pass a *single iterable* yielding
    shards -- e.g. a generator over shard files -- which is consumed
    lazily.  Shards are decoded with :func:`repro.wire.load` /
    :func:`repro.wire.load_from` one at a time and folded left-to-right
    by the matching merge rule, so a fleet of shard files merges while
    holding at most one undecoded frame (and chunked v2 frames stream
    straight out of their files without materializing).  A shard holding
    a wire-v3 *container* (``repro pack`` output) contributes each of
    its frames in container order under the same bound, decoded
    sequentially via :func:`repro.wire.iter_container_objects` -- a
    64-shard container and 64 shard files merge identically.  ``rng``
    feeds the sampling-based merges (reservoirs); the deterministic
    merges ignore it.

    Raises
    ------
    repro.errors.WireFormatError
        If any shard is not a valid frame.
    StreamError
        If fewer than two shards arrive, the shards' types differ, or
        their type has no merge rule.
    """
    source: Iterator[Any]
    if len(shards) == 1 and not isinstance(
        shards[0], (bytes, bytearray, memoryview)
    ) and not hasattr(shards[0], "read"):
        if not isinstance(shards[0], Iterable):
            raise StreamError(
                f"shard must be frame bytes or a binary stream, "
                f"got {type(shards[0]).__name__}"
            )
        source = iter(shards[0])
    else:
        source = iter(shards)
    gen = as_rng(rng)
    merged = None
    count = 0
    for shard in source:
        for decoded in _iter_shard(shard):
            count += 1
            merged = (
                decoded if merged is None else _merge_pair(merged, decoded, gen)
            )
    if count < 2:
        raise StreamError(f"need at least two shards to merge, got {count}")
    return merged
