"""Misra-Gries: the deterministic k-counter heavy-hitters summary.

Keeps at most ``k`` (item, count) pairs; a new item either increments its
counter, claims a free slot, or decrements *all* counters.  The classic
guarantee: every estimate undercounts by at most ``m / (k + 1)`` for a
stream of length ``m``, so ``k = 1/eps`` solves the eps-heavy-hitters
problem -- the "much simpler approximate frequent items problem" whose
lower bounds the paper contrasts with its own (Section 1.2).
"""

from __future__ import annotations

import numpy as np

from ..errors import StreamError
from .base import COUNT_BITS, StreamSummary, drain_counter_batch, item_id_bits

__all__ = ["MisraGries"]


class MisraGries(StreamSummary):
    """The Misra-Gries summary with ``k`` counters.

    Parameters
    ----------
    universe:
        Item-id universe size.
    k:
        Number of counters; guarantees undercount <= ``m / (k+1)``.
    """

    def __init__(self, universe: int, k: int) -> None:
        super().__init__(universe)
        if k < 1:
            raise StreamError(f"k must be >= 1, got {k}")
        self.k = k
        self._counters: dict[int, int] = {}

    def _update(self, item: int) -> None:
        counters = self._counters
        if item in counters:
            counters[item] += 1
        elif len(counters) < self.k:
            counters[item] = 1
        else:
            for key in list(counters):
                counters[key] -= 1
                if counters[key] == 0:
                    del counters[key]

    def _update_many(self, items: np.ndarray) -> None:
        """Bulk path: fold runs of tracked items, replay decrement events."""
        self.stream_length += int(items.size)
        drain_counter_batch(self, self._counters, self.k, items)

    def estimate_count(self, item: int) -> float:
        """Stored counter (0 if untracked); undercounts by <= m/(k+1)."""
        return float(self._counters.get(item, 0))

    def max_undercount(self) -> float:
        """The guarantee: estimates are low by at most ``m / (k + 1)``."""
        return self.stream_length / (self.k + 1)

    def size_in_bits(self) -> int:
        """``k`` slots of (id, count) under the standard cost model."""
        return self.k * (item_id_bits(self.universe) + COUNT_BITS)

    def heavy_hitters(self, threshold: float) -> dict[int, float]:
        """Candidates whose count clears ``(threshold - 1/(k+1)) * m``.

        The deficit compensation is the standard query rule: estimates
        undercount by up to ``m/(k+1)``, so cutting at the compensated
        threshold guarantees no item with true frequency above
        ``threshold`` is missed (choose ``k >= 1/threshold`` for a
        meaningful report).
        """
        if not 0.0 < threshold <= 1.0:
            raise StreamError(f"threshold must lie in (0, 1], got {threshold}")
        if self.stream_length == 0:
            return {}
        cut = (threshold - 1.0 / (self.k + 1)) * self.stream_length
        return {
            item: count / self.stream_length
            for item, count in self._counters.items()
            if count >= cut
        }
