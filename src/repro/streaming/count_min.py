"""Count-Min sketch (Cormode-Muthukrishnan): hashing-based counts.

``depth`` rows of ``width`` counters with pairwise-independent hashes;
an update increments one counter per row, a query takes the minimum.
Guarantees: no undercount, and overcount at most ``(e/width) * m`` with
probability ``1 - e^{-depth}`` per query.  Included as the classic
hashing baseline against which sampling-based summaries (and the paper's
SUBSAMPLE) are compared in E-STRM.
"""

from __future__ import annotations

import numpy as np

from ..db.generators import as_rng
from ..errors import StreamError
from .base import COUNT_BITS, StreamSummary

__all__ = ["CountMinSketch"]

_MERSENNE_PRIME = (1 << 61) - 1


class CountMinSketch(StreamSummary):
    """A ``depth x width`` Count-Min sketch.

    Parameters
    ----------
    universe:
        Item-id universe size.
    width:
        Counters per row; overcount <= ``e * m / width`` w.h.p.
    depth:
        Independent hash rows; failure probability ``e^{-depth}``.
    conservative:
        Use conservative updating (increment only the minimum counters),
        which never hurts accuracy.
    rng:
        Randomness for the hash coefficients.
    """

    def __init__(
        self,
        universe: int,
        width: int,
        depth: int,
        conservative: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(universe)
        if width < 1 or depth < 1:
            raise StreamError(f"width and depth must be >= 1, got {width}, {depth}")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        gen = as_rng(rng)
        self._a = gen.integers(1, _MERSENNE_PRIME, size=depth, dtype=np.int64)
        self._b = gen.integers(0, _MERSENNE_PRIME, size=depth, dtype=np.int64)
        self._table = np.zeros((depth, width), dtype=np.int64)

    def _hashes(self, item: int) -> np.ndarray:
        vals = (self._a * item + self._b) % _MERSENNE_PRIME
        return (vals % self.width).astype(np.intp)

    def _hashes_many(self, items: np.ndarray) -> np.ndarray:
        """Hash columns for a whole batch: ``(depth, len(items))`` at once.

        Same int64 arithmetic as :meth:`_hashes` (including wraparound), so
        batch and itemwise updates land on identical counters.
        """
        vals = (self._a[:, None] * items[None, :] + self._b[:, None]) % _MERSENNE_PRIME
        return (vals % self.width).astype(np.intp)

    def _update(self, item: int) -> None:
        cols = self._hashes(item)
        rows = np.arange(self.depth)
        if self.conservative:
            current = self._table[rows, cols]
            floor = current.min() + 1
            self._table[rows, cols] = np.maximum(current, floor)
        else:
            self._table[rows, cols] += 1

    def _update_many(self, items: np.ndarray) -> None:
        """Bulk path: one vectorized hash evaluation for the whole batch.

        Plain updates are commutative counter additions, applied as one
        bincount per row.  Conservative updates are order-sensitive (each
        depends on the counters the previous one left), so they replay
        itemwise over the precomputed columns.
        """
        self.stream_length += int(items.size)
        cols = self._hashes_many(items)
        if self.conservative:
            rows = np.arange(self.depth)
            table = self._table
            for t in range(cols.shape[1]):
                current = table[rows, cols[:, t]]
                floor = current.min() + 1
                table[rows, cols[:, t]] = np.maximum(current, floor)
        else:
            for r in range(self.depth):
                self._table[r] += np.bincount(cols[r], minlength=self.width)

    def estimate_count(self, item: int) -> float:
        """Minimum counter across rows (never undercounts)."""
        cols = self._hashes(item)
        return float(self._table[np.arange(self.depth), cols].min())

    def expected_overcount(self) -> float:
        """The standard bound ``e * m / width``."""
        return float(np.e) * self.stream_length / self.width

    def size_in_bits(self) -> int:
        """``depth * width`` counters (hash coefficients charged too)."""
        return self.depth * self.width * COUNT_BITS + self.depth * 2 * 64
