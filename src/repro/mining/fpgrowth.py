"""FP-Growth: frequent itemsets via the FP-tree (Han-Pei-Yin lineage).

The third classic miner (after Apriori's level-wise search and Eclat's
tidset DFS): compress the database into a prefix tree ordered by item
frequency, then mine recursively over conditional pattern bases.  Exact and
database-only; agreeing with :func:`~repro.mining.apriori.apriori` and
:func:`~repro.mining.eclat.eclat` is one of the package's cross-checks, and
FP-Growth is the fastest of the three on dense planted data, which the
mining benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import ParameterError

__all__ = ["fpgrowth"]


@dataclass
class _Node:
    """One FP-tree node: an item with a count and child links."""

    item: int
    count: int = 0
    parent: "_Node | None" = None
    children: dict[int, "_Node"] = field(default_factory=dict)


class _FPTree:
    """A prefix tree over frequency-ordered transactions."""

    def __init__(self) -> None:
        self.root = _Node(item=-1)
        self.node_links: dict[int, list[_Node]] = {}

    def insert(self, items: list[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item=item, parent=node)
                node.children[item] = child
                self.node_links.setdefault(item, []).append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base: (path-to-root, count) per occurrence."""
        paths = []
        for node in self.node_links.get(item, []):
            path = []
            cursor = node.parent
            while cursor is not None and cursor.item != -1:
                path.append(cursor.item)
                cursor = cursor.parent
            paths.append((list(reversed(path)), node.count))
        return paths

    def item_counts(self) -> dict[int, int]:
        """Total count per item across the tree."""
        return {
            item: sum(n.count for n in nodes)
            for item, nodes in self.node_links.items()
        }


def _build_tree(
    transactions: list[tuple[list[int], int]], min_count: int
) -> tuple[_FPTree, dict[int, int]]:
    counts: dict[int, int] = {}
    for items, count in transactions:
        for item in items:
            counts[item] = counts.get(item, 0) + count
    frequent = {item: c for item, c in counts.items() if c >= min_count}
    # Order: descending count, ascending item id for determinism.
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-frequent[i], i))
        )
    }
    tree = _FPTree()
    for items, count in transactions:
        kept = sorted(
            (i for i in items if i in frequent), key=order.__getitem__
        )
        if kept:
            tree.insert(kept, count)
    return tree, frequent


def _mine(
    tree: _FPTree,
    suffix: tuple[int, ...],
    min_count: int,
    max_size: int,
    out: dict[Itemset, int],
) -> None:
    counts = tree.item_counts()
    # Mine items in ascending count order (the classic bottom-up sweep).
    for item in sorted(counts, key=lambda i: (counts[i], i)):
        if counts[item] < min_count:
            continue
        new_suffix = (item,) + suffix
        out[Itemset(new_suffix)] = counts[item]
        if len(new_suffix) >= max_size:
            continue
        conditional = tree.prefix_paths(item)
        subtree, frequent = _build_tree(conditional, min_count)
        if frequent:
            _mine(subtree, new_suffix, min_count, max_size, out)


def fpgrowth(
    db: BinaryDatabase,
    min_frequency: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with frequency >= ``min_frequency`` via an FP-tree.

    Matches :func:`~repro.mining.apriori.apriori` and
    :func:`~repro.mining.eclat.eclat` exactly on databases.
    """
    if not 0.0 < min_frequency <= 1.0:
        raise ParameterError(f"min_frequency must lie in (0, 1], got {min_frequency}")
    n = db.n
    if max_size is None:
        max_size = db.d
    min_count = max(1, int(np.ceil(min_frequency * n - 1e-9)))
    transactions = [
        (np.flatnonzero(db.row(i)).tolist(), 1) for i in range(n)
    ]
    tree, frequent = _build_tree(transactions, min_count)
    out_counts: dict[Itemset, int] = {}
    _mine(tree, (), min_count, max_size, out_counts)
    return {itemset: count / n for itemset, count in out_counts.items()}
