"""Frequent-itemset mining substrate (Section 1.1's motivating machinery).

Miners run on databases *or* sketches through the
:class:`~repro.mining.base.FrequencySource` protocol, realizing the paper's
"run the algorithm on the sketch" workflow.
"""

from .apriori import apriori
from .base import (
    DatabaseSource,
    FrequencySource,
    SketchSource,
    as_source,
    batch_frequencies,
)
from .biclique import (
    biclique_to_itemset,
    database_to_bipartite,
    itemset_to_biclique,
    max_balanced_biclique_exact,
    max_balanced_biclique_greedy,
)
from .eclat import eclat
from .fpgrowth import fpgrowth
from .maximal import closed_itemsets, expand_maximal, maximal_itemsets
from .rules import AssociationRule, confidence_error_bound, derive_rules

__all__ = [
    "FrequencySource",
    "DatabaseSource",
    "SketchSource",
    "as_source",
    "batch_frequencies",
    "apriori",
    "eclat",
    "fpgrowth",
    "maximal_itemsets",
    "closed_itemsets",
    "expand_maximal",
    "AssociationRule",
    "derive_rules",
    "confidence_error_bound",
    "database_to_bipartite",
    "itemset_to_biclique",
    "biclique_to_itemset",
    "max_balanced_biclique_exact",
    "max_balanced_biclique_greedy",
]
