"""Frequency sources: the common substrate miners run on.

The paper's point (Section 1.1.2) is that data-mining algorithms can run on
a *sketch* instead of the database.  To make that literal, the miners in
this package accept anything satisfying :class:`FrequencySource` --
``d`` attributes plus a ``frequency(itemset)`` method -- and we provide
adapters for exact databases and for every sketch in :mod:`repro.core`.

Sources may additionally expose ``frequencies_batch(itemsets)``; miners
evaluate whole candidate levels through :func:`batch_frequencies`, which
uses that vectorized path when present (one packed-kernel call per level
for databases) and falls back to per-itemset calls otherwise.
"""

from __future__ import annotations

import inspect
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.base import FrequencySketch
from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..db.queries import FrequencyOracle

__all__ = [
    "FrequencySource",
    "DatabaseSource",
    "SketchSource",
    "as_source",
    "batch_frequencies",
]


@runtime_checkable
class FrequencySource(Protocol):
    """Anything that can report (approximate) itemset frequencies."""

    @property
    def d(self) -> int:
        """Number of attributes."""
        ...

    def frequency(self, itemset: Itemset) -> float:
        """(Approximate) frequency of ``itemset``."""
        ...


class DatabaseSource:
    """Exact frequencies from a database (via the packed-column oracle)."""

    def __init__(self, db: BinaryDatabase) -> None:
        self._oracle = FrequencyOracle(db)
        self._d = db.d

    @property
    def d(self) -> int:
        """Number of attributes."""
        return self._d

    def frequency(self, itemset: Itemset) -> float:
        """Exact ``f_T(D)``."""
        return self._oracle.frequency(itemset)

    def frequencies_batch(
        self,
        itemsets: Sequence[Itemset],
        workers: int | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Exact frequencies for a whole batch in one kernel sweep.

        ``workers`` shards the sweep; ``backend`` picks its executor.
        """
        return self._oracle.frequencies(itemsets, workers=workers, backend=backend)


class SketchSource:
    """Approximate frequencies from any :class:`FrequencySketch`."""

    def __init__(self, sketch: FrequencySketch) -> None:
        self._sketch = sketch

    @property
    def d(self) -> int:
        """Number of attributes (from the sketch's parameters)."""
        return self._sketch.params.d

    def frequency(self, itemset: Itemset) -> float:
        """The sketch's estimate ``Q(S, T)``."""
        return self._sketch.estimate(itemset)

    def frequencies_batch(
        self,
        itemsets: Sequence[Itemset],
        workers: int | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Batched estimates through the sketch's ``estimate_batch``.

        Sketches that query a stored database run one sharded kernel
        sweep; stored-answer sketches ignore ``workers``/``backend``
        (table lookups).
        """
        return self._sketch.estimate_batch(itemsets, workers=workers, backend=backend)


def as_source(obj: BinaryDatabase | FrequencySketch | FrequencySource) -> FrequencySource:
    """Coerce a database, sketch, or source into a :class:`FrequencySource`."""
    if isinstance(obj, BinaryDatabase):
        return DatabaseSource(obj)
    if isinstance(obj, FrequencySketch):
        return SketchSource(obj)
    return obj


def batch_frequencies(
    source: FrequencySource,
    itemsets: Iterable[Itemset],
    workers: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Frequencies for many itemsets, batched when the source supports it.

    Uses the source's ``frequencies_batch`` (one vectorized kernel call)
    when available, otherwise one ``frequency`` call per itemset.  Both
    paths return identical values.  ``workers`` shards batched sweeps and
    ``backend`` selects the shard executor; sources whose batch path takes
    neither keyword are called without them.
    """
    batch = list(itemsets)
    fast = getattr(source, "frequencies_batch", None)
    if fast is not None:
        kwargs = {
            name: value
            for name, value in (("workers", workers), ("backend", backend))
            if value is not None and _accepts_kwarg(fast, name)
        }
        return np.asarray(fast(batch, **kwargs), dtype=float)
    return np.array([source.frequency(t) for t in batch], dtype=float)


def _accepts_kwarg(fn, name: str) -> bool:
    """Whether a batch evaluator's signature takes the named kwarg.

    Inspected once per call site rather than probed with try/except, so a
    genuine ``TypeError`` raised *inside* the sweep propagates instead of
    silently re-running the whole kernel call.
    """
    try:
        return name in inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
