"""The Apriori algorithm (Agrawal-Imielinski-Swami lineage, Section 1.1.1).

Level-wise frequent itemset mining: frequent 1-itemsets seed the search;
level ``k+1`` candidates are joins of frequent k-itemsets sharing a
``(k-1)``-prefix, pruned by the downward-closure property (every subset of
a frequent itemset is frequent).  Runs against any
:class:`~repro.mining.base.FrequencySource`, so the same code mines exact
databases and sketches -- the E-MINE experiment compares the two.
"""

from __future__ import annotations

from itertools import combinations

from ..db.itemset import Itemset
from ..errors import ParameterError
from .base import FrequencySource, as_source, batch_frequencies

__all__ = ["apriori"]


def _join_level(frequent: list[Itemset]) -> set[Itemset]:
    """Candidate (k+1)-itemsets: prefix joins of frequent k-itemsets."""
    candidates: set[Itemset] = set()
    by_prefix: dict[tuple[int, ...], list[int]] = {}
    for itemset in frequent:
        prefix, last = itemset.items[:-1], itemset.items[-1]
        by_prefix.setdefault(prefix, []).append(last)
    for prefix, lasts in by_prefix.items():
        lasts.sort()
        for a, b in combinations(lasts, 2):
            candidates.add(Itemset(prefix + (a, b)))
    return candidates


def _downward_closed(candidate: Itemset, frequent_prev: set[Itemset]) -> bool:
    """Apriori pruning: all k-subsets of the candidate must be frequent."""
    return all(
        Itemset(sub) in frequent_prev
        for sub in combinations(candidate.items, len(candidate) - 1)
    )


def apriori(
    source: FrequencySource,
    min_frequency: float,
    max_size: int | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> dict[Itemset, float]:
    """All itemsets with frequency >= ``min_frequency`` (up to ``max_size``).

    Parameters
    ----------
    source:
        A database, sketch, or any frequency source
        (coerced via :func:`~repro.mining.base.as_source`).
    min_frequency:
        Support threshold in ``(0, 1]``.
    max_size:
        Optional cap on itemset cardinality (``None`` = no cap).
    workers:
        Shards each level's batched frequency sweep (``None`` = auto
        heuristic).
    backend:
        Shard executor for those sweeps: ``"serial"``, ``"thread"``, or
        ``"process"`` (``None`` = auto escalation by sweep volume).

    Returns
    -------
    Mapping from each frequent itemset to its (reported) frequency.
    """
    if not 0.0 < min_frequency <= 1.0:
        raise ParameterError(f"min_frequency must lie in (0, 1], got {min_frequency}")
    src = as_source(source)
    if max_size is None:
        max_size = src.d
    result: dict[Itemset, float] = {}
    level = []
    # Each level is counted in one batched call: a single vectorized kernel
    # sweep on databases, a per-itemset loop on sketches.
    singletons = [Itemset([j]) for j in range(src.d)]
    for itemset, freq in zip(
        singletons, batch_frequencies(src, singletons, workers=workers, backend=backend)
    ):
        if freq >= min_frequency:
            result[itemset] = float(freq)
            level.append(itemset)
    size = 1
    while level and size < max_size:
        prev_set = set(level)
        candidates = [
            c for c in sorted(_join_level(level)) if _downward_closed(c, prev_set)
        ]
        next_level = []
        for candidate, freq in zip(
            candidates,
            batch_frequencies(src, candidates, workers=workers, backend=backend),
        ):
            if freq >= min_frequency:
                result[candidate] = float(freq)
                next_level.append(candidate)
        level = next_level
        size += 1
    return result
