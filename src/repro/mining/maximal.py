"""Maximal and closed frequent itemsets (the condensed representations).

Section 1.1.1 recalls that reporting only *maximal* (no frequent superset)
or *closed* (no equally-frequent superset) itemsets condenses the output,
"but it still requires exponential size in the worst case".  These helpers
compute both condensations from a mined collection and reconstruct the full
collection from the maximal one, so tests can check the representations are
faithful -- and the E-MINE bench can measure how much (or little) they
compress on adversarial inputs.
"""

from __future__ import annotations

from itertools import combinations

from ..db.itemset import Itemset
from ..errors import ParameterError

__all__ = [
    "maximal_itemsets",
    "closed_itemsets",
    "expand_maximal",
]


def maximal_itemsets(frequent: dict[Itemset, float]) -> dict[Itemset, float]:
    """Itemsets with no frequent strict superset."""
    items = list(frequent)
    by_size: dict[int, list[Itemset]] = {}
    for itemset in items:
        by_size.setdefault(len(itemset), []).append(itemset)
    sizes = sorted(by_size, reverse=True)
    out: dict[Itemset, float] = {}
    for size_idx, size in enumerate(sizes):
        for itemset in by_size[size]:
            has_super = any(
                itemset.issubset(bigger)
                for bigger_size in sizes[:size_idx]
                for bigger in by_size[bigger_size]
            )
            if not has_super:
                out[itemset] = frequent[itemset]
    return out


def closed_itemsets(frequent: dict[Itemset, float]) -> dict[Itemset, float]:
    """Itemsets with no strict superset of the *same* frequency."""
    out: dict[Itemset, float] = {}
    for itemset, freq in frequent.items():
        closed = True
        for other, other_freq in frequent.items():
            if (
                len(other) > len(itemset)
                and itemset.issubset(other)
                and other_freq >= freq
            ):
                closed = False
                break
        if closed:
            out[itemset] = freq
    return out


def expand_maximal(maximal: dict[Itemset, float]) -> set[Itemset]:
    """All itemsets implied frequent by a maximal collection.

    Every non-empty subset of a maximal frequent itemset is frequent (the
    downward-closure property); this enumerates them, which is the "2^{d/10}
    subsets" blow-up the paper's introduction warns about.
    """
    out: set[Itemset] = set()
    for itemset in maximal:
        if len(itemset) > 25:
            raise ParameterError(
                f"refusing to expand a maximal itemset of size {len(itemset)} "
                f"(2^{len(itemset)} subsets)"
            )
        for size in range(1, len(itemset) + 1):
            for sub in combinations(itemset.items, size):
                out.add(Itemset(sub))
    return out
