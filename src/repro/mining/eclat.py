"""Eclat: depth-first frequent itemset mining over vertical bitsets.

Eclat (Zaki) represents each item by the set of rows containing it (its
*tidset*) and extends itemsets depth-first, intersecting tidsets.  It is
exact and database-only (tidsets do not exist in a sketch); the miners'
agreement -- ``eclat(db) == apriori(db)`` -- is one of the package's
integration tests, and Eclat is the fast ground-truth engine for E-MINE.
"""

from __future__ import annotations

import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import ParameterError

__all__ = ["eclat"]


def _extend(
    prefix: tuple[int, ...],
    rows_mask: np.ndarray,
    tail: list[tuple[int, np.ndarray]],
    min_count: int,
    max_size: int,
    n: int,
    out: dict[Itemset, float],
) -> None:
    for idx, (item, item_mask) in enumerate(tail):
        mask = rows_mask & item_mask
        count = int(mask.sum())
        if count < min_count:
            continue
        itemset = prefix + (item,)
        out[Itemset(itemset)] = count / n
        if len(itemset) < max_size:
            _extend(itemset, mask, tail[idx + 1 :], min_count, max_size, n, out)


def eclat(
    db: BinaryDatabase,
    min_frequency: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with frequency >= ``min_frequency`` via tidset DFS.

    Matches :func:`~repro.mining.apriori.apriori` exactly on databases.
    """
    if not 0.0 < min_frequency <= 1.0:
        raise ParameterError(f"min_frequency must lie in (0, 1], got {min_frequency}")
    n = db.n
    if max_size is None:
        max_size = db.d
    # ceil(min_frequency * n), robust to float error: smallest count whose
    # frequency is >= the threshold.
    min_count = int(np.ceil(min_frequency * n - 1e-9))
    min_count = max(min_count, 1)
    columns = [(j, db.column(j).copy()) for j in range(db.d)]
    out: dict[Itemset, float] = {}
    _extend((), np.ones(n, dtype=bool), columns, min_count, max_size, n, out)
    return out
