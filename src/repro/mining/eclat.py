"""Eclat: depth-first frequent itemset mining over vertical bitsets.

Eclat (Zaki) represents each item by the set of rows containing it (its
*tidset*) and extends itemsets depth-first, intersecting tidsets.  Tidsets
here are packed uint64 words from the shared
:class:`~repro.db.packed.PackedColumns` kernel: each DFS node intersects its
prefix bitset against *all* remaining items in one vectorized AND +
popcount, so the per-node cost is a single kernel call rather than one
Python-level boolean reduction per extension.  It is exact and
database-only (tidsets do not exist in a sketch); the miners' agreement --
``eclat(db) == apriori(db)`` -- is one of the package's integration tests,
and Eclat is the fast ground-truth engine for E-MINE.
"""

from __future__ import annotations

import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..db.packed import popcount_sum
from ..errors import ParameterError

__all__ = ["eclat"]


def _extend(
    prefix: tuple[int, ...],
    items: np.ndarray,
    masks: np.ndarray,
    counts: np.ndarray,
    min_count: int,
    max_size: int,
    n: int,
    out: dict[Itemset, float],
) -> None:
    """Recurse over the frequent extensions of ``prefix``.

    ``items`` are the item ids frequent in this prefix context, ``masks``
    their packed tidset intersections with the prefix, ``counts`` their
    supports (all already >= ``min_count``).
    """
    size = len(prefix) + 1
    for idx in range(items.size):
        # DFS extends with strictly larger items, so the tuple is sorted.
        itemset = prefix + (int(items[idx]),)
        out[Itemset.from_sorted(itemset)] = int(counts[idx]) / n
        if size < max_size and idx + 1 < items.size:
            child_masks = masks[idx + 1 :] & masks[idx]
            child_counts = popcount_sum(child_masks)
            keep = child_counts >= min_count
            if keep.any():
                _extend(
                    itemset,
                    items[idx + 1 :][keep],
                    child_masks[keep],
                    child_counts[keep],
                    min_count,
                    max_size,
                    n,
                    out,
                )


def eclat(
    db: BinaryDatabase,
    min_frequency: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with frequency >= ``min_frequency`` via packed tidset DFS.

    Matches :func:`~repro.mining.apriori.apriori` exactly on databases.
    """
    if not 0.0 < min_frequency <= 1.0:
        raise ParameterError(f"min_frequency must lie in (0, 1], got {min_frequency}")
    n = db.n
    if max_size is None:
        max_size = db.d
    # ceil(min_frequency * n), robust to float error: smallest count whose
    # frequency is >= the threshold.
    min_count = int(np.ceil(min_frequency * n - 1e-9))
    min_count = max(min_count, 1)
    kernel = db.packed
    counts = popcount_sum(kernel.words)
    keep = counts >= min_count
    out: dict[Itemset, float] = {}
    if keep.any():
        _extend(
            (),
            np.flatnonzero(keep),
            kernel.words[keep],
            counts[keep],
            min_count,
            max_size,
            n,
            out,
        )
    return out
