"""The itemset <-> balanced-biclique correspondence (Section 1.1.1).

View a database as a bipartite graph: rows on one side, attributes on the
other, an edge when the row has a 1 in the attribute.  An itemset of
cardinality ``c`` and support ``s`` is exactly a complete bipartite
subgraph with ``s`` rows and ``c`` attributes; a *balanced* biclique with
``epsilon n`` nodes per side is an itemset of cardinality ``epsilon n``
and frequency ``epsilon``.  Via Feige-Kogan hardness of balanced biclique,
the paper concludes that finding a frequent itemset of approximately
maximal size is NP-hard.

We implement the correspondence in both directions plus an exact
(exponential, tiny-instance) and a greedy (heuristic) maximum balanced
biclique search, so the reduction is runnable and testable.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx
import numpy as np

from ..db.database import BinaryDatabase
from ..db.itemset import Itemset
from ..errors import ParameterError

__all__ = [
    "database_to_bipartite",
    "itemset_to_biclique",
    "biclique_to_itemset",
    "max_balanced_biclique_exact",
    "max_balanced_biclique_greedy",
]


def database_to_bipartite(db: BinaryDatabase) -> nx.Graph:
    """The paper's bipartite view: row nodes ``('r', i)``, attribute nodes
    ``('a', j)``, an edge iff ``D(i, j) = 1``."""
    graph = nx.Graph()
    graph.add_nodes_from(("r", i) for i in range(db.n))
    graph.add_nodes_from(("a", j) for j in range(db.d))
    rows, cols = np.nonzero(db.rows)
    graph.add_edges_from((("r", int(i)), ("a", int(j))) for i, j in zip(rows, cols))
    return graph


def itemset_to_biclique(
    db: BinaryDatabase, itemset: Itemset
) -> tuple[list[int], list[int]]:
    """The complete bipartite subgraph an itemset induces.

    Returns ``(supporting_rows, attributes)``; every returned row is
    connected to every returned attribute by construction.
    """
    rows = np.flatnonzero(db.support_mask(itemset)).tolist()
    return rows, list(itemset.items)


def biclique_to_itemset(
    db: BinaryDatabase, rows: list[int], attributes: list[int]
) -> tuple[Itemset, float]:
    """The itemset a biclique certifies, with its (verified) frequency.

    Raises
    ------
    ParameterError
        If the claimed biclique is not complete in the database.
    """
    itemset = Itemset(attributes)
    mask = db.support_mask(itemset)
    for r in rows:
        if not mask[r]:
            raise ParameterError(
                f"row {r} is not connected to all of {attributes}; not a biclique"
            )
    return itemset, db.frequency(itemset)


def max_balanced_biclique_exact(
    db: BinaryDatabase, max_side: int | None = None
) -> tuple[list[int], list[int]]:
    """Exact maximum balanced biclique by exhaustive search (tiny inputs!).

    Enumerates attribute subsets of each size ``s`` (largest first) and
    checks whether at least ``s`` rows support them.  Exponential in ``d``
    -- which is the paper's point; callers keep ``d <= ~16``.
    """
    if db.d > 16:
        raise ParameterError(
            f"exact balanced biclique is exponential; refuse d={db.d} > 16"
        )
    cap = min(db.n, db.d if max_side is None else max_side)
    for side in range(cap, 0, -1):
        for attrs in combinations(range(db.d), side):
            mask = db.support_mask(Itemset(attrs))
            if int(mask.sum()) >= side:
                rows = np.flatnonzero(mask)[:side].tolist()
                return rows, list(attrs)
    return [], []


def max_balanced_biclique_greedy(db: BinaryDatabase) -> tuple[list[int], list[int]]:
    """Greedy heuristic: repeatedly drop the sparsest side node.

    Starts from the full bipartite graph, removes the row/attribute with
    the fewest surviving connections until the remainder is complete, and
    returns the best balanced biclique observed along the way.  No
    approximation guarantee -- Feige-Kogan says a good one should not
    exist -- but a useful baseline for the E-MINE hardness demonstration.
    """
    rows_alive = np.ones(db.n, dtype=bool)
    attrs_alive = np.ones(db.d, dtype=bool)
    matrix = db.rows
    best_rows: list[int] = []
    best_attrs: list[int] = []

    def _note_candidate() -> None:
        # Rows fully connected to the alive attributes form a biclique with
        # them right now; keep the best balanced one seen along the way.
        nonlocal best_rows, best_attrs
        attrs_idx = np.flatnonzero(attrs_alive)
        if attrs_idx.size == 0:
            return
        full = matrix[:, attrs_idx].all(axis=1) & rows_alive
        side = min(int(full.sum()), attrs_idx.size)
        if side > len(best_attrs):
            best_rows = np.flatnonzero(full)[:side].tolist()
            best_attrs = attrs_idx[:side].tolist()

    while True:
        _note_candidate()
        sub = matrix[np.ix_(rows_alive, attrs_alive)]
        if sub.size == 0 or sub.all():
            break
        row_gaps = (~sub).sum(axis=1)
        attr_gaps = (~sub).sum(axis=0)
        if row_gaps.max() >= attr_gaps.max():
            victim = np.flatnonzero(rows_alive)[int(row_gaps.argmax())]
            rows_alive[victim] = False
        else:
            victim = np.flatnonzero(attrs_alive)[int(attr_gaps.argmax())]
            attrs_alive[victim] = False
    return best_rows, best_attrs
