"""One-way randomized communication protocols (the Theorem 14 substrate).

In the one-way model, Alice holds ``x``, Bob holds ``y``, both see a public
random string, Alice sends one message, and Bob outputs a bit that must
equal ``f(x, y)`` with probability at least 2/3.  Theorem 14 turns any
For-Each-Itemset-Frequency-Indicator sketch into such a protocol for INDEX,
so the protocol's communication cost -- which is exactly the sketch size --
inherits INDEX's Omega(N) lower bound.

:class:`OneWayProtocol` is the abstract protocol; :class:`ProtocolRun`
records a single execution (message bits, output, correctness) so
experiments can measure communication and error empirically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..db.generators import as_rng
from ..errors import ParameterError

__all__ = ["OneWayProtocol", "ProtocolRun", "evaluate_protocol"]


@dataclass(frozen=True)
class ProtocolRun:
    """One execution of a one-way protocol.

    Attributes
    ----------
    message_bits:
        Length of Alice's message in bits.
    output:
        Bob's output bit.
    correct:
        Whether the output matched ``f(x, y)``.
    """

    message_bits: int
    output: bool
    correct: bool


class OneWayProtocol(ABC):
    """A one-way protocol computing a Boolean function ``f(x, y)``.

    Subclasses implement Alice's message, Bob's decision, and the target
    function.  Public randomness is modelled by passing the same generator
    to both sides.
    """

    @abstractmethod
    def alice_message(self, x: Any, rng: np.random.Generator) -> tuple[bytes, int]:
        """Alice's message for input ``x``: ``(payload, n_bits)``."""

    @abstractmethod
    def bob_output(self, message: tuple[bytes, int], y: Any) -> bool:
        """Bob's output bit given Alice's message and his input ``y``."""

    @abstractmethod
    def target(self, x: Any, y: Any) -> bool:
        """The function ``f(x, y)`` the protocol must compute."""

    def run(
        self, x: Any, y: Any, rng: np.random.Generator | int | None = None
    ) -> ProtocolRun:
        """Execute the protocol once and record the outcome."""
        gen = as_rng(rng)
        message = self.alice_message(x, gen)
        output = self.bob_output(message, y)
        return ProtocolRun(
            message_bits=message[1],
            output=output,
            correct=output == self.target(x, y),
        )


def evaluate_protocol(
    protocol: OneWayProtocol,
    instance_sampler: Callable[[np.random.Generator], tuple[Any, Any]],
    trials: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Estimate a protocol's error rate and mean communication.

    Parameters
    ----------
    protocol:
        The protocol under test.
    instance_sampler:
        Draws an ``(x, y)`` instance per trial.
    trials:
        Number of independent executions.

    Returns
    -------
    (error_rate, mean_message_bits)
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    gen = as_rng(rng)
    errors = 0
    total_bits = 0
    for _ in range(trials):
        x, y = instance_sampler(gen)
        run = protocol.run(x, y, gen)
        errors += not run.correct
        total_bits += run.message_bits
    return errors / trials, total_bits / trials
