"""One-way communication complexity substrate (Theorem 14's reduction target)."""

from .index import TrivialIndexProtocol, index_lower_bound_bits, sample_index_instance
from .protocol import OneWayProtocol, ProtocolRun, evaluate_protocol

__all__ = [
    "OneWayProtocol",
    "ProtocolRun",
    "evaluate_protocol",
    "TrivialIndexProtocol",
    "index_lower_bound_bits",
    "sample_index_instance",
]
