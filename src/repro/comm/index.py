"""The INDEX problem and its Omega(N) one-way lower bound.

INDEX: Alice holds ``x in {0,1}^N``, Bob holds an index ``y in [N]``, and
Bob must output ``x_y``.  Ablayev [Abl96] showed any one-way randomized
protocol with error < 1/3 needs Omega(N) bits of communication; the exact
information-theoretic form is ``(1 - H(error)) * N`` bits, which
:func:`index_lower_bound_bits` returns.

:class:`TrivialIndexProtocol` (Alice sends everything) witnesses the
matching upper bound.  The protocol built *from a sketch* lives in
:mod:`repro.lowerbounds.thm14`, keeping this module sketch-agnostic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.entropy import binary_entropy
from ..db.bitmatrix import pack_bits, unpack_bits
from ..db.generators import as_rng
from ..errors import ParameterError
from .protocol import OneWayProtocol

__all__ = [
    "index_lower_bound_bits",
    "TrivialIndexProtocol",
    "sample_index_instance",
]


def index_lower_bound_bits(n: int, error: float) -> float:
    """Communication any INDEX protocol needs: ``(1 - H(error)) * N``.

    This is the standard information-theoretic form of Ablayev's bound
    (exact, not asymptotic).
    """
    if n < 1:
        raise ParameterError(f"N must be >= 1, got {n}")
    if not 0.0 <= error < 0.5:
        raise ParameterError(f"error must lie in [0, 0.5), got {error}")
    return (1.0 - binary_entropy(error)) * n


def sample_index_instance(
    n: int, rng: np.random.Generator | int | None = None
) -> tuple[np.ndarray, int]:
    """A uniform INDEX instance: random ``x in {0,1}^N`` and ``y in [N]``."""
    gen = as_rng(rng)
    x = gen.random(n) < 0.5
    y = int(gen.integers(0, n))
    return x, y


class TrivialIndexProtocol(OneWayProtocol):
    """Alice sends all of ``x``; Bob reads bit ``y``.  Exactly N bits, no error."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ParameterError(f"N must be >= 1, got {n}")
        self.n = n

    def alice_message(self, x: Any, rng: np.random.Generator) -> tuple[bytes, int]:
        arr = np.asarray(x, dtype=bool).reshape(-1)
        if arr.size != self.n:
            raise ParameterError(f"x must have {self.n} bits, got {arr.size}")
        return pack_bits(arr), self.n

    def bob_output(self, message: tuple[bytes, int], y: Any) -> bool:
        payload, n_bits = message
        bits = unpack_bits(payload, n_bits)
        return bool(bits[int(y)])

    def target(self, x: Any, y: Any) -> bool:
        return bool(np.asarray(x, dtype=bool).reshape(-1)[int(y)])
