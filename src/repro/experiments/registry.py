"""The experiment registry: one entry per reproduced claim.

EXPERIMENTS.md, the benchmarks, and the README all key off this table, so
the mapping from paper anchors (theorems, lemmas, sections) to code lives
in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "experiment_by_id"]


@dataclass(frozen=True)
class Experiment:
    """One reproduced claim.

    Attributes
    ----------
    exp_id:
        Stable identifier (``E-T13`` etc.) used across docs and benches.
    paper_anchor:
        Theorem/lemma/section the claim comes from.
    claim:
        One-line statement of what must hold.
    modules:
        The implementing modules.
    bench:
        Path of the benchmark that regenerates the numbers.
    """

    exp_id: str
    paper_anchor: str
    claim: str
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "E-T12",
        "Theorem 12",
        "The three naive sketches' *measured* wire-payload sizes match "
        "min{nd, C(d,k)[log 1/eps], eps^-1..-2 d log(...)} across the "
        "(d, k, eps) grid; the winners table reports measured / "
        "theoretical / lower-bound columns.",
        ("repro.core.bounds", "repro.core.hybrid", "repro.wire"),
        "benchmarks/bench_theorem12_upper_bounds.py",
    ),
    Experiment(
        "E-L9",
        "Lemma 9",
        "SUBSAMPLE at the prescribed sample counts meets each task's "
        "delta; estimator error scales as s^{-1/2}.",
        ("repro.core.subsample", "repro.analysis.chernoff"),
        "benchmarks/bench_lemma9_subsample.py",
    ),
    Experiment(
        "E-T13",
        "Theorem 13",
        "The hard family encodes d/(2 eps) arbitrary bits recoverable "
        "from any valid For-All indicator sketch (=> Omega(d/eps)).",
        ("repro.lowerbounds.thm13",),
        "benchmarks/bench_thm13_encoding.py",
    ),
    Experiment(
        "E-T14",
        "Theorem 14",
        "A For-Each indicator sketch yields an INDEX protocol with error "
        "<= delta and communication = sketch size (=> Omega(d/eps)).",
        ("repro.lowerbounds.thm14", "repro.comm.index"),
        "benchmarks/bench_thm14_index.py",
    ),
    Experiment(
        "E-F18",
        "Fact 18 / Appendix A",
        "The explicit v = k' log(d/k') strings are shattered by "
        "k'-itemset queries (every pattern realised).",
        ("repro.lowerbounds.fact18",),
        "benchmarks/bench_fact18_shattering.py",
    ),
    Experiment(
        "E-L19",
        "Lemma 19",
        "Consistency decoding from threshold bits has Hamming error "
        "<= 2 eps v (v/25 at eps = 1/50).",
        ("repro.lowerbounds.lemma19",),
        "benchmarks/bench_thm15_reconstruction.py",
    ),
    Experiment(
        "E-T15",
        "Theorem 15",
        "The bootstrapped construction + ECC exactly recovers "
        "Omega(k d log(d/k)) bits; tag amplification multiplies by 1/(50 eps).",
        ("repro.lowerbounds.thm15", "repro.coding.concatenated"),
        "benchmarks/bench_thm15_reconstruction.py",
    ),
    Experiment(
        "E-KRSU",
        "Section 4.1.1 / [KRSU10]",
        "L2 reconstruction of the last column succeeds while "
        "eps sqrt(n) is small and degrades past the ~1 crossover.",
        ("repro.lowerbounds.krsu", "repro.linalg.l2"),
        "benchmarks/bench_krsu_l2.py",
    ),
    Experiment(
        "E-L26",
        "Lemma 26 / [Rud12]",
        "sigma_min of Hadamard-product matrices grows as sqrt(d^{k-1}); "
        "the range's Euclidean-section delta stays bounded below.",
        ("repro.linalg.hadamard", "repro.linalg.sections"),
        "benchmarks/bench_rudelson_spectra.py",
    ),
    Experiment(
        "E-T16",
        "Theorem 16 / Lemmas 20-27",
        "Lemma 21 + L1 decoding recover v independent De payloads from "
        "one For-All estimator sketch (=> Omega~(k d log(d/k)/eps^2)).",
        ("repro.lowerbounds.thm16", "repro.lowerbounds.de12", "repro.linalg.l1"),
        "benchmarks/bench_thm16_l1_decoding.py",
    ),
    Experiment(
        "E-T17",
        "Theorem 17",
        "Median boosting turns a For-Each estimator into a For-All one at "
        "x O(log C(d,k)) size with measured failure <= delta.",
        ("repro.lowerbounds.thm17",),
        "benchmarks/bench_thm17_median_boost.py",
    ),
    Experiment(
        "E-CROSS",
        "Section 3.1 discussion",
        "Crossover map of which naive algorithm wins across (d, k, eps); "
        "For-All == For-Each cost in the regimes the section names.",
        ("repro.core.hybrid", "repro.core.bounds"),
        "benchmarks/bench_crossover_regimes.py",
    ),
    Experiment(
        "E-STRM",
        "Section 1.2",
        "Heavy-hitter summaries beat sampling for 1-itemsets, but "
        "itemset-level streaming gains nothing over row sampling.",
        ("repro.streaming",),
        "benchmarks/bench_streaming_baselines.py",
    ),
    Experiment(
        "E-MINE",
        "Section 1.1",
        "Mining on a SUBSAMPLE sketch reproduces the database's frequent "
        "itemsets up to eps; biclique <-> itemset correspondence holds.",
        ("repro.mining",),
        "benchmarks/bench_mining_on_sketch.py",
    ),
    Experiment(
        "E-PRIV",
        "Section 1.4, footnote 3",
        "Exponential-mechanism release errs eps + O(s/n); the DP-to-sketch "
        "bound conversion s = Omega(t - eps n) is monotone and tight at 0.",
        ("repro.privacy",),
        "benchmarks/bench_privacy_bridge.py",
    ),
    Experiment(
        "E-ABL-ECC",
        "Thm 15/16 proofs (ECC substitution)",
        "Ablation: RM-inner vs certified-GV-inner concatenations -- both "
        "clear the 4% adversarial radius; only the GV family has constant "
        "rate across m.",
        ("repro.coding.concatenated", "repro.coding.gv_concatenated"),
        "benchmarks/bench_ablation_codes.py",
    ),
    Experiment(
        "E-ABL-IMP",
        "Conclusion (future work / [LLS16])",
        "Ablation: importance sampling beats uniform sampling on skewed "
        "databases and gains nothing on the Theorem 13 hard family.",
        ("repro.core.importance",),
        "benchmarks/bench_ablation_importance.py",
    ),
    Experiment(
        "E-CAL",
        "Lemmas 10-11 (constants)",
        "Calibration: exact binomial tails vs the Chernoff bounds; Lemma "
        "9's sample counts carry single-digit constant slack.",
        ("repro.analysis.binomial",),
        "benchmarks/bench_calibration_chernoff.py",
    ),
)


def experiment_by_id(exp_id: str) -> Experiment:
    """Look up an experiment by its stable id.

    Raises
    ------
    KeyError
        If the id is unknown.
    """
    for experiment in EXPERIMENTS:
        if experiment.exp_id == exp_id:
            return experiment
    raise KeyError(f"unknown experiment id {exp_id!r}")
