"""Experiment harness: registry, sweeps, and plain-text reporting."""

from .harness import (
    empirical_failure_rate,
    grid,
    log_slope,
    measure_frame_overhead,
    measure_sketch_error,
    measure_sketch_sizes,
)
from .registry import EXPERIMENTS, Experiment, experiment_by_id
from .report import (
    format_series,
    format_table,
    frame_overhead_columns,
    print_experiment_header,
    size_columns,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "experiment_by_id",
    "grid",
    "measure_sketch_error",
    "measure_sketch_sizes",
    "measure_frame_overhead",
    "empirical_failure_rate",
    "log_slope",
    "format_table",
    "format_series",
    "frame_overhead_columns",
    "print_experiment_header",
    "size_columns",
]
