"""Experiment harness: registry, sweeps, and plain-text reporting."""

from .harness import (
    empirical_failure_rate,
    grid,
    log_slope,
    measure_sketch_error,
    measure_sketch_sizes,
)
from .registry import EXPERIMENTS, Experiment, experiment_by_id
from .report import (
    format_series,
    format_table,
    print_experiment_header,
    size_columns,
)

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "experiment_by_id",
    "grid",
    "measure_sketch_error",
    "measure_sketch_sizes",
    "empirical_failure_rate",
    "log_slope",
    "format_table",
    "format_series",
    "print_experiment_header",
    "size_columns",
]
