"""Parameter sweeps and measurement helpers shared by the benchmarks."""

from __future__ import annotations

from itertools import product
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..core.base import Sketcher
from ..db.database import BinaryDatabase
from ..db.generators import as_rng
from ..db.itemset import Itemset, unrank_itemset
from ..db.queries import FrequencyOracle
from ..errors import ParameterError
from ..params import SketchParams

__all__ = [
    "grid",
    "measure_sketch_error",
    "measure_sketch_sizes",
    "measure_frame_overhead",
    "empirical_failure_rate",
    "log_slope",
]


def grid(**axes: Iterable[Any]) -> Iterator[dict[str, Any]]:
    """Cartesian product of named axes as dicts (deterministic order).

    >>> list(grid(a=[1, 2], b=['x']))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    for values in product(*(list(axes[name]) for name in names)):
        yield dict(zip(names, values))


def _sample_itemsets(
    params: SketchParams, count: int, rng: np.random.Generator
) -> list[Itemset]:
    total = params.num_itemsets
    if total <= count:
        ranks = np.arange(total)
    else:
        ranks = rng.choice(total, size=count, replace=False)
    return [unrank_itemset(int(r), params.k) for r in ranks]


def measure_sketch_error(
    sketcher: Sketcher,
    db: BinaryDatabase,
    params: SketchParams,
    n_itemsets: int = 200,
    rng: np.random.Generator | int | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> dict[str, float]:
    """One sketch draw: max/mean absolute estimation error over itemsets.

    Returns a dict with ``max_error``, ``mean_error`` and ``bits``.
    ``workers``/``backend`` shard the exact ground-truth sweep and the
    sketch's batched queries (``None`` = auto heuristics).
    """
    gen = as_rng(rng)
    itemsets = _sample_itemsets(params, n_itemsets, gen)
    oracle = FrequencyOracle(db)
    sketch = sketcher.sketch(db, params, gen)
    exact = oracle.frequencies(itemsets, workers=workers, backend=backend)
    errors = np.abs(
        np.asarray(sketch.estimate_batch(itemsets, workers=workers, backend=backend))
        - exact
    )
    return {
        "max_error": float(errors.max()),
        "mean_error": float(errors.mean()),
        "bits": float(sketch.size_in_bits()),
    }


def measure_sketch_sizes(
    sketcher: Sketcher,
    db: BinaryDatabase,
    params: SketchParams,
    rng: np.random.Generator | int | None = None,
) -> dict[str, float]:
    """One sketch draw: measured vs theoretical vs lower-bound size columns.

    ``measured_bits`` is the bit length of the sketch's *serialized wire
    payload* (:func:`repro.wire.payload_size_bits`), not a formula -- the
    number a lower bound is literally a statement about.  The charged
    size is invariant under transport choices: wire v1 and v2 frames
    declare the same ``n_bits``, and zlib payload compression shrinks
    only the stored bytes, never ``size_in_bits`` (lower bounds
    constrain information content, which deflation preserves).  The
    returned row also carries the sketcher's closed-form prediction and
    the best applicable lower bound for the task, with the two ratios
    the reports print (``measured / theoretical`` should be 1.0 exactly
    for the naive algorithms; ``measured / lower`` is the optimality
    gap).
    """
    from ..core.bounds import lower_bound_bits
    from ..wire import payload_size_bits

    sketch = sketcher.sketch(db, params, as_rng(rng))
    measured = payload_size_bits(sketch)
    theoretical = sketcher.theoretical_size_bits(params)
    lower = lower_bound_bits(sketcher.task, params)
    return {
        "measured_bits": float(measured),
        "theoretical_bits": float(theoretical),
        "lower_bound_bits": float(lower),
        "measured_over_theoretical": measured / max(theoretical, 1),
        "measured_over_lower": measured / max(lower, 1.0),
    }


def measure_frame_overhead(obj: Any) -> dict[str, float]:
    """Per-frame header overhead of one serialized summary, v1 vs v2.

    The payload is version-invariant (``n_bits`` is the charged size
    either way), so ``frame bytes - ceil(n_bits / 8)`` isolates what the
    *container* costs: magic, codec id, params block, extras (canonical
    JSON under v1, binary varint fields under v2), length fields, and
    the CRC trailer.  This is the constant-factor term that matters when
    comparing against Price's optimal indicator sketches at small ``k``,
    where the payload itself is only a few hundred bits.
    """
    from ..wire import WIRE_V1, WIRE_V2, dump

    # size_in_bits() == payload n_bits is the registry contract (asserted
    # by the wire suite), so the payload size comes for free instead of a
    # third full encode.
    payload_bytes = (obj.size_in_bits() + 7) // 8
    v1_bytes = len(dump(obj, version=WIRE_V1))
    v2_bytes = len(dump(obj, version=WIRE_V2))
    return {
        "payload_bytes": float(payload_bytes),
        "v1_frame_bytes": float(v1_bytes),
        "v2_frame_bytes": float(v2_bytes),
        "v1_header_bytes": float(v1_bytes - payload_bytes),
        "v2_header_bytes": float(v2_bytes - payload_bytes),
        "header_savings_bytes": float(v1_bytes - v2_bytes),
    }


def empirical_failure_rate(
    check: Callable[[np.random.Generator], bool],
    trials: int,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Fraction of trials where ``check`` returned False (= failed)."""
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    gen = as_rng(rng)
    failures = sum(not check(gen) for _ in range(trials))
    return failures / trials


def log_slope(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    The "figure" benchmarks assert scaling exponents with this: sketch
    size vs ``1/eps`` should have slope ~1 (indicator) or ~2 (estimator).
    """
    x = np.log(np.asarray(list(xs), dtype=float))
    y = np.log(np.asarray(list(ys), dtype=float))
    if x.size != y.size or x.size < 2:
        raise ParameterError("need at least two matching points")
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)
