"""Plain-text tables and series for benchmark output.

The paper has no numeric tables, so these helpers are how our benches
"print the same rows the paper reports": one table per claim, with a
``paper says`` column where applicable (EXPERIMENTS.md records the pairs).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = [
    "format_table",
    "format_series",
    "print_experiment_header",
    "size_columns",
    "frame_overhead_columns",
]


def format_table(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
) -> str:
    """Render dict-rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0])
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(cols[i]), *(len(r[i]) for r in rendered)) for i in range(len(cols))
    ]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(cols))) for r in rendered
    )
    return f"{header}\n{sep}\n{body}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def size_columns(
    measured_bits: int | float,
    theoretical_bits: int | float,
    lower_bound_bits: int | float,
) -> dict[str, Any]:
    """The standard size triple as ordered table columns.

    ``measured`` is the serialized wire-payload length, ``theoretical``
    the sketcher's closed-form prediction, ``lower`` the best applicable
    lower bound; ``meas/lower`` is the optimality gap the paper's
    theorems constrain.  Use with :func:`format_table` so every report
    prints the three sizes in the same order with the same headers.

    The charged-bits rule: ``measured`` is always the *uncompressed*
    payload bit count ``n_bits``.  Wire-format transport choices --
    frame version, chunking, zlib payload compression -- change the
    stored byte count but never ``size_in_bits``, so these columns are
    invariant under how the sketch happens to be shipped.
    """
    return {
        "measured": int(measured_bits),
        "theoretical": int(theoretical_bits),
        "lower": int(round(float(lower_bound_bits))),
        "meas/lower": float(measured_bits) / max(float(lower_bound_bits), 1.0),
    }


def frame_overhead_columns(overhead: Mapping[str, Any]) -> dict[str, Any]:
    """Per-frame header-overhead columns (v1 vs v2), ordered for tables.

    ``overhead`` is one row from
    :func:`repro.experiments.harness.measure_frame_overhead`.  ``v1 hdr``
    and ``v2 hdr`` are frame bytes minus payload bytes -- the container's
    cost around the charged payload -- and ``saved`` is the v2 win from
    binary varint headers over v1's length-prefixed JSON extras.
    """
    return {
        "payload B": int(overhead["payload_bytes"]),
        "v1 hdr": int(overhead["v1_header_bytes"]),
        "v2 hdr": int(overhead["v2_header_bytes"]),
        "saved": int(overhead["header_savings_bytes"]),
    }


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render an (x, y) series -- the benches' figure-equivalent output."""
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_experiment_header(exp_id: str) -> None:
    """Banner naming the experiment and its paper anchor."""
    from .registry import experiment_by_id

    exp = experiment_by_id(exp_id)
    print(f"\n=== {exp.exp_id} [{exp.paper_anchor}] ===")
    print(exp.claim)
