"""Reconstruction linear algebra: Hadamard products, sections, L1/L2 decoding."""

from .hadamard import hadamard_product, random_bernoulli_matrices, row_index_tuples
from .l1 import l1_estimate, l1_reconstruct_bits
from .l2 import l2_error_bound, l2_estimate, l2_reconstruct_bits
from .sections import euclidean_section_delta, l1_l2_ratio, smallest_singular_value

__all__ = [
    "hadamard_product",
    "random_bernoulli_matrices",
    "row_index_tuples",
    "l1_estimate",
    "l1_reconstruct_bits",
    "l2_estimate",
    "l2_reconstruct_bits",
    "l2_error_bound",
    "smallest_singular_value",
    "euclidean_section_delta",
    "l1_l2_ratio",
]
