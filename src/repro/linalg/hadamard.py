"""Hadamard (row-tensor) products of matrices (Definition 22).

Given ``A_1, ..., A_s`` with ``A_j in R^{l_j x n}``, their Hadamard product
``A in R^{(l_1 ... l_s) x n}`` has one row per tuple ``(i_1, ..., i_s)``,
equal to the entrywise product of the chosen rows.  For 0/1 matrices this
is exactly the matrix of AND-combinations: row ``(i_1, ..., i_s)`` of ``A``
applied to a column ``y`` counts the rows ``h`` where *all* of
``A_1[i_1,h], ..., A_s[i_s,h]`` and ``y_h`` are 1 -- which is why k-itemset
frequency queries on the KRSU/De databases are linear in exactly this
matrix (Section 4.1).

Rudelson's theorem (Lemma 26) says that for i.i.d. unbiased 0/1 matrices
the product has smallest singular value ``Omega(sqrt(d^{k-1}))`` and a
well-conditioned (Euclidean-section) range; :mod:`repro.linalg.sections`
measures both.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from ..db.generators import as_rng
from ..errors import ParameterError

__all__ = ["hadamard_product", "random_bernoulli_matrices", "row_index_tuples"]


def hadamard_product(matrices: list[np.ndarray]) -> np.ndarray:
    """The Hadamard (row-tensor) product of the given matrices.

    All matrices must share the same number of columns ``n``.  The output
    has ``prod(l_j)`` rows; row order follows ``numpy`` C-order over the
    index tuples ``(i_1, ..., i_s)`` (first factor slowest), matching
    :func:`row_index_tuples`.
    """
    if not matrices:
        raise ParameterError("hadamard_product requires at least one matrix")
    arrays = [np.asarray(m, dtype=float) for m in matrices]
    n = arrays[0].shape[1]
    for a in arrays:
        if a.ndim != 2 or a.shape[1] != n:
            raise ParameterError(
                f"all matrices must be 2-D with {n} columns, got shape {a.shape}"
            )

    def _pair(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # (lx, n) x (ly, n) -> (lx * ly, n) with x index slowest.
        return (x[:, None, :] * y[None, :, :]).reshape(-1, n)

    return reduce(_pair, arrays)


def row_index_tuples(shapes: list[int]) -> list[tuple[int, ...]]:
    """The index tuples labelling the product's rows, in row order."""
    if not shapes:
        raise ParameterError("row_index_tuples requires at least one factor")
    grids = np.meshgrid(*[np.arange(l) for l in shapes], indexing="ij")
    stacked = np.stack([g.reshape(-1) for g in grids], axis=1)
    return [tuple(int(v) for v in row) for row in stacked]


def random_bernoulli_matrices(
    count: int,
    rows: int,
    cols: int,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """``count`` i.i.d. matrices with unbiased {0,1} entries (Lemma 26's nu)."""
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    gen = as_rng(rng)
    return [(gen.random((rows, cols)) < 0.5).astype(float) for _ in range(count)]
