"""Euclidean sections and singular-value measurements (Definition 23, Lemma 26).

A subspace ``V ⊆ R^z`` of dimension ``d'`` is a ``(delta, d', z)`` Euclidean
section when every ``x in V`` satisfies
``sqrt(z) ||x||_2 >= ||x||_1 >= delta sqrt(z) ||x||_2``.
The upper inequality is Cauchy-Schwarz (always true); the content is the
lower one, and the largest valid ``delta`` for the range of a matrix ``A``
is ``min_{x != 0} ||Ax||_1 / (sqrt(z) ||Ax||_2)``.

Minimising that ratio exactly is NP-hard in general, so
:func:`euclidean_section_delta` reports a *sampled* upper bound (random
directions plus coordinate directions of the domain), which is the standard
empirical proxy; for Lemma 26's qualitative claim ("delta bounded below by
a constant independent of size") a sampled bound suffices and the
benchmarks track it across sizes.
"""

from __future__ import annotations

import numpy as np

from ..db.generators import as_rng
from ..errors import ParameterError

__all__ = ["smallest_singular_value", "euclidean_section_delta", "l1_l2_ratio"]


def smallest_singular_value(matrix: np.ndarray) -> float:
    """``sigma_min`` of a matrix (dense SVD; experiment scales are modest)."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ParameterError(f"need a 2-D matrix, got shape {arr.shape}")
    return float(np.linalg.svd(arr, compute_uv=False)[-1])


def l1_l2_ratio(vector: np.ndarray) -> float:
    """``||x||_1 / (sqrt(z) ||x||_2)`` -- in ``[delta, 1]`` for sections."""
    x = np.asarray(vector, dtype=float).reshape(-1)
    norm2 = np.linalg.norm(x)
    if norm2 == 0:
        raise ParameterError("ratio undefined for the zero vector")
    return float(np.abs(x).sum() / (np.sqrt(x.size) * norm2))


def euclidean_section_delta(
    matrix: np.ndarray,
    n_directions: int = 500,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Sampled estimate of the section constant ``delta`` of ``range(A)``.

    Evaluates :func:`l1_l2_ratio` on ``A g`` for ``n_directions`` random
    Gaussian directions ``g`` plus every coordinate direction of the
    domain, and returns the minimum.  This upper-bounds the true ``delta``;
    Lemma 26's claim is that it stays bounded away from 0 as the matrix
    grows, which the benchmark verifies empirically.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ParameterError(f"need a 2-D matrix, got shape {arr.shape}")
    if n_directions < 1:
        raise ParameterError(f"n_directions must be >= 1, got {n_directions}")
    gen = as_rng(rng)
    n = arr.shape[1]
    ratios = []
    directions = gen.standard_normal((n_directions, n))
    for g in directions:
        image = arr @ g
        if np.linalg.norm(image) > 0:
            ratios.append(l1_l2_ratio(image))
    for j in range(n):
        image = arr[:, j]
        if np.linalg.norm(image) > 0:
            ratios.append(l1_l2_ratio(image))
    if not ratios:
        raise ParameterError("matrix has trivial range; delta undefined")
    return float(min(ratios))
