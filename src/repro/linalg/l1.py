"""L1-minimisation (LP) decoding -- De's reconstruction primitive (Lemma 24).

De [De12] replaces KRSU's least squares with L1 minimisation so that the
reconstruction tolerates answers that are accurate only *on average*: a few
wildly wrong answers move an L2 fit a lot but an L1 fit a little.  The
decoder solves

    minimise   || A z - b ||_1     subject to  0 <= z <= 1

as a linear program (auxiliary residual variables ``r`` with
``-r <= A z - b <= r``), then rounds ``z`` at 1/2.  scipy's HiGHS solver
handles the experiment scales (hundreds of rows/columns) comfortably.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..errors import DecodingError, ParameterError

__all__ = ["l1_estimate", "l1_reconstruct_bits"]


def l1_estimate(matrix: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """Solve ``min ||A z - b||_1  s.t.  0 <= z <= 1`` by linear programming.

    Returns the fractional minimiser ``z in [0,1]^n``.

    Raises
    ------
    DecodingError
        If the LP solver fails to converge.
    """
    a = np.asarray(matrix, dtype=float)
    b = np.asarray(answers, dtype=float).reshape(-1)
    if a.ndim != 2 or a.shape[0] != b.size:
        raise ParameterError(f"shape mismatch: matrix {a.shape} vs answers {b.shape}")
    n_rows, n_cols = a.shape
    # Variables: [z (n_cols), r (n_rows)]; objective: sum r.
    cost = np.concatenate([np.zeros(n_cols), np.ones(n_rows)])
    # A z - r <= b   and   -A z - r <= -b.
    upper = np.hstack([a, -np.eye(n_rows)])
    lower = np.hstack([-a, -np.eye(n_rows)])
    a_ub = np.vstack([upper, lower])
    b_ub = np.concatenate([b, -b])
    bounds = [(0.0, 1.0)] * n_cols + [(0.0, None)] * n_rows
    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise DecodingError(f"L1 decoding LP failed: {result.message}")
    return result.x[:n_cols]


def l1_reconstruct_bits(matrix: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """De's reconstruction: L1 fit then round at 1/2."""
    return l1_estimate(matrix, answers) >= 0.5
