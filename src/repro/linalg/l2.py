"""L2 (least-squares / pseudo-inverse) reconstruction -- the KRSU decoder.

Section 4.1.1 describes KRSU's attack: given a vector ``y`` of approximate
answers to the linear query family ``A`` applied to an unknown 0/1 vector
``z``, reconstruct ``z_hat = A^+ y`` (Moore-Penrose pseudo-inverse, i.e.
L2-distance minimisation) and round to bits.  When ``A`` has a "nice"
spectrum (Lemma 26) and the per-answer error is below ``c * sqrt(n)``, the
rounding recovers most bits.

The module exposes both the raw least-squares estimate and the rounded
reconstruction, plus the error bound that drives the ``n <~ 1/eps^2``
phase transition measured by E-KRSU.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = ["l2_estimate", "l2_reconstruct_bits", "l2_error_bound"]


def l2_estimate(matrix: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """Least-squares solution ``A^+ y`` (the KRSU estimator)."""
    a = np.asarray(matrix, dtype=float)
    y = np.asarray(answers, dtype=float).reshape(-1)
    if a.ndim != 2 or a.shape[0] != y.size:
        raise ParameterError(
            f"shape mismatch: matrix {a.shape} vs answers {y.shape}"
        )
    solution, *_ = np.linalg.lstsq(a, y, rcond=None)
    return solution


def l2_reconstruct_bits(matrix: np.ndarray, answers: np.ndarray) -> np.ndarray:
    """KRSU reconstruction: least squares then round at 1/2."""
    return l2_estimate(matrix, answers) >= 0.5


def l2_error_bound(matrix: np.ndarray, answer_error_l2: float) -> float:
    """Worst-case ``||z_hat - z||_2`` from answers with L2 error ``e``.

    Least squares is linear, so the reconstruction error is at most
    ``e / sigma_min(A)``; with Lemma 26's ``sigma_min = Omega(sqrt(d^{k-1}))``
    this is what makes per-answer error ``eps * n <~ sqrt(n)`` recoverable.
    """
    if answer_error_l2 < 0:
        raise ParameterError(f"error must be non-negative, got {answer_error_l2}")
    sigma = np.linalg.svd(np.asarray(matrix, dtype=float), compute_uv=False)[-1]
    if sigma == 0:
        raise ParameterError("matrix is singular; L2 reconstruction unbounded")
    return float(answer_error_l2 / sigma)
