"""Hamming-distance utilities shared by decoders and their tests.

Lemma 19 guarantees reconstruction up to Hamming distance ``v/25``; the
error-correcting codes of Theorems 15/16 must uniquely decode from a 4%
bit-error fraction.  These helpers keep those checks uniform.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = [
    "hamming_distance",
    "hamming_fraction",
    "flip_random_bits",
    "flip_adversarial_run",
]


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where two equal-length bit vectors differ."""
    x = np.asarray(a, dtype=bool).reshape(-1)
    y = np.asarray(b, dtype=bool).reshape(-1)
    if x.shape != y.shape:
        raise ParameterError(f"length mismatch: {x.shape} vs {y.shape}")
    return int(np.count_nonzero(x ^ y))


def hamming_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of differing positions (``distance / length``)."""
    x = np.asarray(a, dtype=bool).reshape(-1)
    if x.size == 0:
        raise ParameterError("cannot compare zero-length vectors")
    return hamming_distance(a, b) / x.size


def flip_random_bits(
    bits: np.ndarray, count: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Return a copy with ``count`` distinct uniformly random positions flipped."""
    arr = np.asarray(bits, dtype=bool).copy().reshape(-1)
    if count < 0 or count > arr.size:
        raise ParameterError(f"cannot flip {count} of {arr.size} bits")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if count:
        pos = gen.choice(arr.size, size=count, replace=False)
        arr[pos] ^= True
    return arr


def flip_adversarial_run(bits: np.ndarray, count: int, start: int = 0) -> np.ndarray:
    """Return a copy with a contiguous run of ``count`` bits flipped.

    Bursts are the worst case for naive codes; the concatenated code's tests
    use this to check that its guaranteed radius holds against concentrated
    (not just random) corruption.
    """
    arr = np.asarray(bits, dtype=bool).copy().reshape(-1)
    if count < 0 or start < 0 or start + count > arr.size:
        raise ParameterError(
            f"run [{start}, {start + count}) out of range for {arr.size} bits"
        )
    arr[start : start + count] ^= True
    return arr
