"""Probabilistic and information-theoretic tooling (Lemmas 10-11, Fano)."""

from .binomial import (
    binomial_two_sided_tail,
    binomial_upper_tail,
    chernoff_slack_factor,
    exact_estimator_samples,
)
from .chernoff import (
    chernoff_additive,
    chernoff_multiplicative,
    forall_estimator_samples,
    forall_indicator_samples,
    foreach_estimator_samples,
    foreach_indicator_samples,
    union_bound_delta,
)
from .entropy import (
    binary_entropy,
    empirical_entropy,
    encoding_lower_bound,
    fano_lower_bound,
)
from .hamming import (
    flip_adversarial_run,
    flip_random_bits,
    hamming_distance,
    hamming_fraction,
)

__all__ = [
    "binomial_two_sided_tail",
    "binomial_upper_tail",
    "exact_estimator_samples",
    "chernoff_slack_factor",
    "chernoff_additive",
    "chernoff_multiplicative",
    "foreach_indicator_samples",
    "foreach_estimator_samples",
    "forall_indicator_samples",
    "forall_estimator_samples",
    "union_bound_delta",
    "binary_entropy",
    "fano_lower_bound",
    "encoding_lower_bound",
    "empirical_entropy",
    "hamming_distance",
    "hamming_fraction",
    "flip_random_bits",
    "flip_adversarial_run",
]
