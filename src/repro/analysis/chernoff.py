"""Chernoff bounds and the sample-size calculators of Lemma 9.

The paper's upper bounds (Section 2) rest on two standard Chernoff forms:

* Lemma 10 (multiplicative): ``P[X not in [(1-e)p, (1+e)p]] <= 2 exp(-s p e^2 / 4)``
* Lemma 11 (additive):       ``P[X not in [p-e, p+e]]       <= 2 exp(-2 s e^2)``

where ``X`` is the mean of ``s`` i.i.d. Bernoulli(p) variables.  From these
the proof of Lemma 9 derives the number of row samples SUBSAMPLE needs for
each of the four sketching tasks; the ``*_samples`` functions below are the
exact expressions used in that proof (with their explicit constants), and
are what :class:`repro.core.subsample.SubsampleSketcher` calls.
"""

from __future__ import annotations

import math
from math import comb

from ..errors import ParameterError

__all__ = [
    "chernoff_multiplicative",
    "chernoff_additive",
    "foreach_indicator_samples",
    "foreach_estimator_samples",
    "forall_indicator_samples",
    "forall_estimator_samples",
    "union_bound_delta",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 < value < 1.0:
        raise ParameterError(f"{name} must lie in (0, 1), got {value}")


def chernoff_multiplicative(s: int, p: float, epsilon: float) -> float:
    """Lemma 10's tail bound ``2 exp(-s p epsilon^2 / 4)`` (clamped to 1).

    Valid for ``epsilon < 2e - 1``; we do not enforce that cap because the
    bound is only ever *weaker* outside it and the callers use small epsilon.
    """
    if s < 0:
        raise ParameterError(f"s must be non-negative, got {s}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must lie in [0, 1], got {p}")
    return min(1.0, 2.0 * math.exp(-s * p * epsilon * epsilon / 4.0))


def chernoff_additive(s: int, epsilon: float) -> float:
    """Lemma 11's tail bound ``2 exp(-2 s epsilon^2)`` (clamped to 1)."""
    if s < 0:
        raise ParameterError(f"s must be non-negative, got {s}")
    return min(1.0, 2.0 * math.exp(-2.0 * s * epsilon * epsilon))


def foreach_indicator_samples(epsilon: float, delta: float) -> int:
    """Rows for a For-Each indicator sketch: ``16 ln(2/delta) / epsilon``.

    This is the explicit constant from the proof of Lemma 9 (the step
    bounding ``P[f_T(D') not in [p/2, 2p]] <= 2 exp(-s p / 16)``).
    """
    _check_probability("epsilon", epsilon)
    _check_probability("delta", delta)
    return max(1, math.ceil(16.0 * math.log(2.0 / delta) / epsilon))


def foreach_estimator_samples(epsilon: float, delta: float) -> int:
    """Rows for a For-Each estimator sketch: ``ln(2/delta) / epsilon^2``.

    From Lemma 11: ``2 exp(-2 s eps^2) <= delta`` iff
    ``s >= ln(2/delta) / (2 eps^2)``; we keep the proof's slack factor 2.
    """
    _check_probability("epsilon", epsilon)
    _check_probability("delta", delta)
    return max(1, math.ceil(math.log(2.0 / delta) / (epsilon * epsilon)))


def forall_indicator_samples(epsilon: float, delta: float, d: int, k: int) -> int:
    """Rows for a For-All indicator sketch: union bound over ``C(d,k)`` sets.

    Equals :func:`foreach_indicator_samples` with ``delta' = delta/C(d,k)``.
    """
    if not 1 <= k <= d:
        raise ParameterError(f"need 1 <= k <= d, got k={k}, d={d}")
    delta_prime = delta / comb(d, k)
    _check_probability("epsilon", epsilon)
    if delta_prime <= 0:
        raise ParameterError("delta too small for union bound")
    return max(1, math.ceil(16.0 * math.log(2.0 / delta_prime) / epsilon))


def forall_estimator_samples(epsilon: float, delta: float, d: int, k: int) -> int:
    """Rows for a For-All estimator sketch: union bound over ``C(d,k)`` sets."""
    if not 1 <= k <= d:
        raise ParameterError(f"need 1 <= k <= d, got k={k}, d={d}")
    delta_prime = delta / comb(d, k)
    _check_probability("epsilon", epsilon)
    if delta_prime <= 0:
        raise ParameterError("delta too small for union bound")
    return max(1, math.ceil(math.log(2.0 / delta_prime) / (epsilon * epsilon)))


def union_bound_delta(per_event_delta: float, n_events: int) -> float:
    """Total failure probability across ``n_events`` events (clamped to 1)."""
    if n_events < 0:
        raise ParameterError(f"n_events must be non-negative, got {n_events}")
    return min(1.0, per_event_delta * n_events)
