"""Exact binomial tail probabilities, for calibrating the Chernoff bounds.

Lemma 9's sample counts come from Chernoff bounds with explicit constants;
how much slack do those constants carry?  These exact tails (via scipy's
regularized incomplete beta through ``binom``) answer that: the calibration
test compares ``P[|X/s - p| > eps]`` computed exactly against Lemmas 10/11,
and :func:`exact_estimator_samples` finds the *smallest* sample count that
truly meets a (eps, delta) target -- the number an implementation could use
if it trusted exact tails instead of bounds.
"""

from __future__ import annotations

import math

from scipy.stats import binom

from ..errors import ParameterError

__all__ = [
    "binomial_two_sided_tail",
    "binomial_upper_tail",
    "exact_estimator_samples",
    "chernoff_slack_factor",
]


def _check(s: int, p: float) -> None:
    if s < 1:
        raise ParameterError(f"s must be >= 1, got {s}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must lie in [0, 1], got {p}")


def binomial_upper_tail(s: int, p: float, threshold: float) -> float:
    """``P[X/s > threshold]`` for ``X ~ Binomial(s, p)`` (exact)."""
    _check(s, p)
    cutoff = math.floor(threshold * s)
    return float(binom.sf(cutoff, s, p))


def binomial_two_sided_tail(s: int, p: float, eps: float) -> float:
    """``P[|X/s - p| > eps]`` for ``X ~ Binomial(s, p)`` (exact)."""
    _check(s, p)
    if eps < 0:
        raise ParameterError(f"eps must be non-negative, got {eps}")
    upper = binom.sf(math.floor((p + eps) * s), s, p)
    lower = binom.cdf(math.ceil((p - eps) * s) - 1, s, p)
    return float(min(1.0, upper + lower))


def exact_estimator_samples(
    eps: float, delta: float, worst_p: float = 0.5, hi: int = 1 << 22
) -> int:
    """Smallest ``s`` with exact two-sided tail <= ``delta`` at ``worst_p``.

    ``p = 1/2`` maximizes the binomial variance, so a count sufficient
    there is sufficient for every frequency (the estimator task's worst
    case).  Binary search over ``s``.
    """
    if not 0.0 < eps < 1.0 or not 0.0 < delta < 1.0:
        raise ParameterError("eps and delta must lie in (0, 1)")
    lo = 1
    if binomial_two_sided_tail(hi, worst_p, eps) > delta:
        raise ParameterError(f"no s <= {hi} meets the target; eps too small")
    while lo < hi:
        mid = (lo + hi) // 2
        if binomial_two_sided_tail(mid, worst_p, eps) <= delta:
            hi = mid
        else:
            lo = mid + 1
    return lo


def chernoff_slack_factor(eps: float, delta: float) -> float:
    """How oversized Lemma 9's estimator count is vs the exact requirement.

    Returns ``lemma9_count / exact_count`` (>= 1 whenever the bound is
    valid); the calibration bench reports this across (eps, delta).
    """
    from .chernoff import foreach_estimator_samples

    exact = exact_estimator_samples(eps, delta)
    return foreach_estimator_samples(eps, delta) / exact
