"""Information-theoretic accounting for the encoding arguments.

Every lower bound in the paper ends with "basic information theory then
implies |S| = Omega(b)": if a sketch lets a decoder recover ``b`` arbitrary
payload bits with success probability ``1 - delta``, then Fano's inequality
forces the sketch to carry at least ``(1 - delta) b - 1`` bits (and at least
``(1 - H(delta)) b`` when the payload is uniform).  This module provides the
exact finite versions of those statements so benchmarks can compare *measured
sketch sizes* against *measured recovered bits*.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError

__all__ = [
    "binary_entropy",
    "fano_lower_bound",
    "encoding_lower_bound",
    "empirical_entropy",
]


def binary_entropy(p: float) -> float:
    """The binary entropy function ``H(p)`` in bits (``H(0)=H(1)=0``)."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must lie in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def fano_lower_bound(payload_bits: int, failure_prob: float) -> float:
    """Fano's inequality: bits any channel must carry to allow recovery.

    If a uniform ``payload_bits``-bit message can be recovered from an
    encoding with error probability at most ``failure_prob``, the encoding's
    mutual information with the message -- hence its length -- is at least
    ``(1 - failure_prob) * payload_bits - H(failure_prob)``.
    """
    if payload_bits < 0:
        raise ParameterError(f"payload_bits must be non-negative, got {payload_bits}")
    if not 0.0 <= failure_prob < 1.0:
        raise ParameterError(f"failure_prob must lie in [0, 1), got {failure_prob}")
    bound = (1.0 - failure_prob) * payload_bits - binary_entropy(failure_prob)
    return max(0.0, bound)


def encoding_lower_bound(payload_bits: int, failure_prob: float) -> float:
    """The paper's "basic information theory" step, as a number.

    Alias of :func:`fano_lower_bound`; named to match the proofs' phrasing
    ("S(D) allows for exact reconstruction of z arbitrary bits with
    probability 1 - delta, hence |S| = Omega(z)").
    """
    return fano_lower_bound(payload_bits, failure_prob)


def empirical_entropy(samples: np.ndarray) -> float:
    """Plug-in Shannon entropy (bits) of an array of discrete samples."""
    arr = np.asarray(samples).reshape(-1)
    if arr.size == 0:
        raise ParameterError("cannot estimate entropy from zero samples")
    _, counts = np.unique(arr, return_counts=True)
    probs = counts / counts.sum()
    return float(-(probs * np.log2(probs)).sum())
