"""Deterministic fault-injection harnesses for robustness tests.

Everything here is test infrastructure shipped as library code, because
the failure modes it manufactures (torn writes, mid-frame disconnects,
short reads, killed workers) are exactly the ones the durability and
retry layers promise to survive -- downstream users hardening their own
deployments can reuse the same harness.  Nothing in this package is
imported by the serving path.
"""

from .faults import FaultyFile, FaultyProxy, kill_once_partial_kernel

__all__ = ["FaultyFile", "FaultyProxy", "kill_once_partial_kernel"]
