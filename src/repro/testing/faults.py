"""Seeded, deterministic fault injection: sockets, files, workers.

Three harnesses, one per failure domain the robustness layer covers:

:class:`FaultyProxy`
    A TCP proxy that forwards bytes between a client and an upstream
    server in seeded short-read chunks, optionally delaying each chunk,
    and cuts the connection after a per-direction byte budget -- a
    mid-frame disconnect / truncation at a *chosen, reproducible* byte.
    With ``then_clean=True`` (default) the fault fires once and later
    connections pass through untouched, which is exactly the shape a
    retry policy must survive: fail, reconnect, succeed.

:class:`FaultyFile`
    A binary-file wrapper that dies partway through a ``write`` after a
    byte budget, leaving a prefix of the attempted bytes on disk -- the
    torn-append signature a SIGKILL or power cut leaves in a WAL.  The
    injected :class:`OSError` stands in for the crash; everything before
    the budget is real, durable file I/O.

:func:`kill_once_partial_kernel`
    A pipeline shard kernel that SIGKILLs its own worker process the
    first time it runs (guarded by an exclusively-created flag file
    named in ``REPRO_FAULT_KILL_FLAG``), then behaves exactly like the
    real :func:`~repro.streaming.pipeline._partial_sketch_kernel`.
    Drives the pipeline's pool-rebuild-and-retry supervision path
    deterministically.

Determinism: every byte schedule derives from an explicit ``seed``; no
harness consults wall-clock time or global randomness.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
import time
from typing import IO

from ..streaming.pipeline import _partial_sketch_kernel as _REAL_PARTIAL_KERNEL

__all__ = ["FaultPlan", "FaultyFile", "FaultyProxy", "kill_once_partial_kernel"]

#: Environment variable naming the flag file for kill_once_partial_kernel.
KILL_FLAG_ENV = "REPRO_FAULT_KILL_FLAG"


class FaultPlan:
    """The seeded schedule a :class:`FaultyProxy` follows.

    Parameters
    ----------
    seed:
        Seeds the per-direction chunk-size streams; the same seed and
        traffic reproduce the same cut points.
    max_chunk:
        Upper bound on one forwarded chunk (short reads: each relay hop
        moves ``uniform[1, max_chunk]`` bytes, so frame boundaries never
        align with packet boundaries).
    delay_s:
        Sleep before forwarding each chunk -- a slow network, for driving
        client/server timeouts.
    c2s_budget / s2c_budget:
        Total bytes allowed client->server / server->client before the
        connection is cut mid-stream.  ``None`` means never cut.
    then_clean:
        After a budget trips once, later connections relay untouched
        (the "transient fault" shape retries must survive).  ``False``
        re-arms the budget for every new connection.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        max_chunk: int = 1024,
        delay_s: float = 0.0,
        c2s_budget: int | None = None,
        s2c_budget: int | None = None,
        then_clean: bool = True,
    ) -> None:
        if max_chunk < 1:
            raise ValueError(f"max_chunk must be >= 1, got {max_chunk}")
        for label, budget in (("c2s", c2s_budget), ("s2c", s2c_budget)):
            if budget is not None and budget < 0:
                raise ValueError(f"{label}_budget must be >= 0, got {budget}")
        self.seed = seed
        self.max_chunk = max_chunk
        self.delay_s = delay_s
        self.c2s_budget = c2s_budget
        self.s2c_budget = s2c_budget
        self.then_clean = then_clean


class _Budget:
    """Thread-safe byte allowance shared by one direction's relays."""

    def __init__(self, limit: int | None) -> None:
        self._limit = limit
        self._lock = threading.Lock()
        self.tripped = False

    def take(self, wanted: int) -> int:
        """Bytes of ``wanted`` that may pass; trips at exhaustion."""
        with self._lock:
            if self._limit is None:
                return wanted
            allowed = min(wanted, self._limit)
            self._limit -= allowed
            if allowed < wanted:
                self.tripped = True
            return allowed

    def disarm(self) -> None:
        with self._lock:
            self._limit = None

    def rearm(self, limit: int | None) -> None:
        with self._lock:
            self._limit = limit


class FaultyProxy:
    """A deterministic fault-injecting TCP proxy in front of one server.

    Usage::

        with FaultyProxy("127.0.0.1", server_port,
                         plan=FaultPlan(seed=7, s2c_budget=6)) as proxy:
            client = Client(proxy.host, proxy.port, retry=RetryPolicy())
            ...  # first response dies after 6 bytes; the retry succeeds

    The proxy listens on an ephemeral port (:attr:`port` after
    :meth:`start`), accepts any number of connections, and applies the
    :class:`FaultPlan` budgets across them (fault counters are shared,
    so "cut after N response bytes total" means total).  Counters:
    :attr:`connections` accepted so far, :attr:`faults` budget trips.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        plan: FaultPlan | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan if plan is not None else FaultPlan()
        self.host = host
        self.port = 0
        self.connections = 0
        self.faults = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._relays: list[threading.Thread] = []
        self._open_sockets: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._closing = False
        self._c2s = _Budget(self.plan.c2s_budget)
        self._s2c = _Budget(self.plan.s2c_budget)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "FaultyProxy":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-faulty-proxy", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting and tear down every live relay (idempotent)."""
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            sockets = list(self._open_sockets)
        for sock in sockets:
            _shutdown_quietly(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for relay in self._relays:
            relay.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        index = 0
        while not self._closing:
            try:
                downstream, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self.plan.then_clean:
                self._c2s.rearm(self.plan.c2s_budget)
                self._s2c.rearm(self.plan.s2c_budget)
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=10
                )
            except OSError:
                _shutdown_quietly(downstream)
                continue
            self.connections += 1
            with self._lock:
                self._open_sockets.update((downstream, upstream))
            pair = index
            index += 1
            for lane, (direction, src, dst, budget) in enumerate((
                ("c2s", downstream, upstream, self._c2s),
                ("s2c", upstream, downstream, self._s2c),
            )):
                # Deterministic per-connection, per-direction stream
                # (never hash(): string hashing is salted per process).
                chunk_seed = self.plan.seed * 1_000_003 + pair * 2 + lane
                relay = threading.Thread(
                    target=self._relay,
                    args=(src, dst, budget, random.Random(chunk_seed)),
                    name=f"repro-faulty-proxy-{direction}",
                    daemon=True,
                )
                relay.start()
                self._relays.append(relay)

    def _relay(
        self,
        src: socket.socket,
        dst: socket.socket,
        budget: _Budget,
        rng: random.Random,
    ) -> None:
        try:
            while True:
                chunk = src.recv(rng.randint(1, self.plan.max_chunk))
                if not chunk:
                    break
                if self.plan.delay_s:
                    time.sleep(self.plan.delay_s)
                allowed = budget.take(len(chunk))
                if allowed:
                    dst.sendall(chunk[:allowed])
                if allowed < len(chunk):
                    # Budget exhausted mid-chunk: a truncated frame on
                    # the wire, then a hard cut of both halves.
                    self.faults += 1
                    if self.plan.then_clean:
                        budget.disarm()
                    break
        except OSError:
            pass
        finally:
            _shutdown_quietly(src)
            _shutdown_quietly(dst)
            with self._lock:
                self._open_sockets.discard(src)
                self._open_sockets.discard(dst)


def _shutdown_quietly(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class FaultyFile:
    """A binary file wrapper that crashes after a byte budget.

    Wrap an open binary file and every :meth:`write` passes through
    until cumulative written bytes would exceed ``fail_after_bytes``;
    the excess write lands only partially (prefix flushed to the real
    file) and raises :class:`OSError` -- the on-disk state is exactly
    what a power cut mid-append leaves: a torn final record.  Reads,
    seeks, and metadata calls always pass through.
    """

    def __init__(self, file: IO[bytes], fail_after_bytes: int | None = None) -> None:
        if fail_after_bytes is not None and fail_after_bytes < 0:
            raise ValueError(
                f"fail_after_bytes must be >= 0, got {fail_after_bytes}"
            )
        self._file = file
        self.fail_after_bytes = fail_after_bytes
        self.written = 0
        self.tripped = False

    def write(self, data: bytes) -> int:
        budget = self.fail_after_bytes
        if budget is None or self.written + len(data) <= budget:
            self.written += len(data)
            return self._file.write(data)
        keep = budget - self.written
        if keep > 0:
            self._file.write(data[:keep])
            self.written += keep
        # Make the torn prefix durable before "crashing", like the real
        # page cache surviving the process that died.
        self._file.flush()
        os.fsync(self._file.fileno())
        self.tripped = True
        raise OSError(
            f"injected crash after {self.written} bytes "
            f"({len(data) - keep} bytes of this write lost)"
        )

    def __getattr__(self, name: str):
        return getattr(self._file, name)


def kill_once_partial_kernel(arrays, outs, lo, hi, params) -> None:
    """Shard kernel that SIGKILLs its worker once, then works normally.

    Requires ``REPRO_FAULT_KILL_FLAG`` in the environment to name a flag
    file; the first worker to create it (exclusively, so exactly one
    kill happens no matter how many workers race) kills its own process
    with ``SIGKILL`` -- no cleanup, no exception, the genuine article.
    Every later invocation, including the supervised retry of the same
    batch, delegates to the real partial kernel.  Module-level so the
    process backend can pickle it by qualified name.
    """
    flag = os.environ.get(KILL_FLAG_ENV)
    if flag:
        try:
            fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # the kill already happened; behave normally
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    # The binding captured at import time, NOT a late lookup on the
    # pipeline module: fork-started workers inherit the parent's
    # monkeypatched module, and a late lookup there would recurse.
    _REAL_PARTIAL_KERNEL(arrays, outs, lo, hi, params)
